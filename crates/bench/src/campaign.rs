//! Unified chaos campaign: every seeded fault dimension composed under
//! one root seed, with availability accounting and automatic repro
//! minimization.
//!
//! The earlier soaks each stress one layer in isolation — WCET overruns
//! (`crate::tenants`), regulator failures plus brownouts
//! (`crate::regulator`), transactional mode churn (`crate::modes`),
//! crash/restore (`tests/recovery.rs`), a flooding tenant
//! (`crate::tenants`), and clock/timer faults (`crate::clock`). The
//! campaign turns them into *dimensions* of one
//! [`ChaosPlan`] and runs all of them against the same kernel at once:
//! the relaxed Table 2 hard-RT set plus a two-lane tenant server on the
//! K6-2+ prototype machine, under phased adversity windows.
//!
//! # Seed discipline
//!
//! Every dimension draws from its own child of the plan's root stream
//! (`SplitMix64::seed_from_u64(plan.seed).split(tag)`), and every
//! schedule draws exactly once per decision slot regardless of its rate.
//! Consequence: toggling or attenuating one dimension leaves every other
//! dimension's drawn sequence **byte-identical** — the invariant the
//! shrinker's bisection relies on, and the one `tests/campaign.rs`
//! pins as a property test over [`materialize`].
//!
//! # Availability accounting
//!
//! Each cell's event log is replayed through
//! [`rtdvs_kernel::AvailabilityStats`] (MTTF/MTTR, time-in-degraded-mode,
//! per-rung ladder histogram, post-kill recovery latency) and audited
//! against the campaign's [`AvailabilityPolicy`] (bounded recovery,
//! availability floor) on top of the lifecycle and tenant-isolation
//! auditors. Misses are blame-classified as in `crate::regulator`, with
//! injected overruns also excusing (the fault dimension voids the
//! admission premises just like hardware adversity does).
//!
//! # Repro minimization
//!
//! When a plan trips an audit rule, [`shrink_plan`] delta-debugs it:
//! disable whole dimensions to a fixpoint, then halve the horizon, then
//! halve the surviving rates — re-running the cell after every candidate
//! edit and keeping it only if the *same rule* still fires. The result is
//! a minimal `rtdvs-repro/v1` artifact ([`ReproArtifact`]) whose floats
//! are serialized as IEEE-754 bit patterns, so `figures repro <file>`
//! (via `xtask repro`) replays it to the bit-identical violation.

use std::fmt::Write as _;
use std::time::Instant;

use rtdvs_audit::{
    audit_availability, audit_kernel_log, audit_tenant_isolation, AvailabilityPolicy, Rule,
    TenantStanding, Violation,
};
use rtdvs_core::policy::PolicyKind;
use rtdvs_core::tenant::{TenantId, TenantQuota};
use rtdvs_core::time::{Time, Work};
use rtdvs_kernel::{KernelEvent, ModeChange, OverrunBody, RtKernel, Snapshot, TenantServer};
use rtdvs_platform::{PowerNowCpu, UnreliableRegulator};
use rtdvs_taskgen::{OpenLoopGen, OpenLoopSpec, Request, SplitMix64};

use crate::artifact::{fmt_f64, ArtifactError, Json};
use crate::clock::clock_plan;
use crate::regulator::regulator_plan;
use crate::tenants::RELAXED_TABLE2;

/// Schema identifier of the campaign golden (`BENCH_campaign.json`).
pub const CAMPAIGN_SCHEMA: &str = "rtdvs-campaign/v1";

/// Schema identifier of a minimized repro artifact.
pub const REPRO_SCHEMA: &str = "rtdvs-repro/v1";

/// Stream tags of the root split, one per dimension plus the workload.
/// The workload tag feeds the periodic bodies' base demand and the
/// compliant tenant stream — always active, never toggled.
const STREAM_WORKLOAD: u64 = 0x0C_0000;
const STREAM_FAULTS: u64 = 0x0C_0001;
const STREAM_REGULATOR: u64 = 0x0C_0002;
const STREAM_KILLS: u64 = 0x0C_0003;
const STREAM_CHURN: u64 = 0x0C_0004;
const STREAM_FLOOD: u64 = 0x0C_0005;
const STREAM_CLOCK: u64 = 0x0C_0006;

/// Drive-loop slot: the tenant server period and the cadence at which
/// generators are drained into it.
const SLOT_MS: f64 = 10.0;

/// Spacing of the kill decision slots: each slot flips a coin with the
/// kill dimension's rate and, on heads, crashes the kernel at a drawn
/// instant inside the slot (revived from the latest checkpoint).
const KILL_SLOT_MS: f64 = 500.0;

/// Spacing of the churn decision slots (matches `crate::modes`).
const CHURN_SLOT_MS: f64 = 20.0;

/// Spacing of the brownout decision slots (matches `crate::regulator`).
const BROWNOUT_SLOT_MS: f64 = 100.0;

/// The operating point a brownout clamps to (index into the K6-2+'s
/// seven points; keeps the relaxed set feasible under the cap).
const BROWNOUT_CAP_POINT: usize = 3;

/// Checkpoint cadence: what a kill can rewind to.
const CHECKPOINT_MS: f64 = 90.0;

/// The period the churn dimension toggles the first periodic task to
/// (and back from its nominal 16 ms). Both shapes stay admissible under
/// every paper policy, so a churn-induced miss is a transaction bug.
const CHURN_RELAXED_PERIOD_MS: f64 = 24.0;

/// Server shape: two lanes (compliant + flood) inside one budget.
const SERVER_PERIOD_MS: f64 = 10.0;
const SERVER_BUDGET_MS: f64 = 1.5;
const COMPLIANT_QUOTA_MS: f64 = 0.56;
const COMPLIANT_BACKLOG: usize = 256;
const FLOOD_QUOTA_MS: f64 = 0.1;
const FLOOD_BACKLOG: usize = 24;

/// Mean request work of both tenant streams, ms.
const MEAN_WORK_MS: f64 = 0.05;

/// Flood interarrival at rate 1.0: 0.05 ms work per 0.5 ms gap is 10x
/// the flood lane's 0.1 ms-per-period quota.
const FLOOD_BASE_GAP_MS: f64 = 0.5;

/// The shrinker never halves the horizon below this.
const MIN_REPRO_HORIZON_MS: f64 = 100.0;

/// Rate-halving budget per dimension in the shrinker's attenuate phase.
const MAX_RATE_HALVINGS: u32 = 4;

// ---------------------------------------------------------------------------
// The plan
// ---------------------------------------------------------------------------

/// A half-open adversity window `[start_ms, end_ms)` in virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Window {
    /// First instant the dimension may act, ms.
    pub start_ms: f64,
    /// First instant it may no longer act, ms (`f64::INFINITY` = open).
    pub end_ms: f64,
}

impl Window {
    /// The whole run.
    #[must_use]
    pub fn full() -> Window {
        Window {
            start_ms: 0.0,
            end_ms: f64::INFINITY,
        }
    }

    /// A bounded window.
    #[must_use]
    pub fn span(start_ms: f64, end_ms: f64) -> Window {
        Window { start_ms, end_ms }
    }

    /// Whether `at_ms` falls inside the window.
    #[must_use]
    pub fn contains(&self, at_ms: f64) -> bool {
        at_ms >= self.start_ms && at_ms < self.end_ms
    }

    /// Whether the window covers any time at all before `horizon_ms`.
    #[must_use]
    pub fn overlaps(&self, horizon_ms: f64) -> bool {
        self.start_ms < self.end_ms && self.start_ms < horizon_ms
    }
}

/// WCET-overrun dimension: each periodic invocation inside the window
/// overruns to `factor` x WCET with probability `rate`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultDim {
    /// Per-invocation overrun probability.
    pub rate: f64,
    /// Overrun magnitude as a WCET multiple.
    pub factor: f64,
    /// When overruns may fire.
    pub window: Window,
}

/// Regulator-adversity dimension: an [`UnreliableRegulator`] at `rate`
/// (failures, timeouts, settle jitter) for the whole run — hardware is
/// attached or it is not — plus a brownout-cap schedule gated to the
/// window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegulatorDim {
    /// Per-attempt failure probability (also the per-slot brownout rate).
    pub rate: f64,
    /// When brownout caps may be imposed.
    pub window: Window,
}

/// Crash/restore dimension: each [`KILL_SLOT_MS`] slot inside the window
/// kills the kernel with probability `rate`; it is revived from the most
/// recent checkpoint (taken every [`CHECKPOINT_MS`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KillDim {
    /// Per-slot kill probability.
    pub rate: f64,
    /// When kills may fire.
    pub window: Window,
}

/// Mode-churn dimension: each [`CHURN_SLOT_MS`] slot inside the window
/// submits a period-toggle transaction with probability `rate`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnDim {
    /// Per-slot churn probability.
    pub rate: f64,
    /// When transactions may be submitted.
    pub window: Window,
}

/// Flooding-tenant dimension: an open-loop stream into the flood lane at
/// `rate` x the 10x-quota reference intensity, submitting only inside
/// the window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloodDim {
    /// Flood intensity (1.0 = 10x the lane quota).
    pub rate: f64,
    /// When flood arrivals are submitted.
    pub window: Window,
}

/// Clock-fault dimension: a seeded [`rtdvs_sim::ClockPlan`] at `rate`
/// (drift retargets at the rate; tick loss and coalescing at half,
/// backward jumps at a quarter — the same scaling as
/// [`crate::clock::clock_plan`]), acting only inside the window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockDim {
    /// Clock adversity rate (per-tick drift-retarget probability).
    pub rate: f64,
    /// When clock faults may fire.
    pub window: Window,
}

/// One composed chaos campaign: every fault dimension the repo knows,
/// derived from a single root seed.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    /// Root seed every dimension's stream splits from.
    pub seed: u64,
    /// Simulated horizon, ms.
    pub horizon_ms: f64,
    /// WCET overruns.
    pub faults: FaultDim,
    /// Unreliable regulator plus brownout caps.
    pub regulator: RegulatorDim,
    /// Crash/restore kills.
    pub kills: KillDim,
    /// Transactional mode churn.
    pub mode_churn: ChurnDim,
    /// Flooding tenant.
    pub flood: FloodDim,
    /// Seeded clock/timer faults.
    pub clock: ClockDim,
}

impl ChaosPlan {
    /// Names of the dimensions that can act at all (`rate > 0` and a
    /// window overlapping the horizon), in canonical order.
    #[must_use]
    pub fn active_dimensions(&self) -> Vec<&'static str> {
        let mut active = Vec::new();
        if self.faults.rate > 0.0 && self.faults.window.overlaps(self.horizon_ms) {
            active.push("faults");
        }
        if self.regulator.rate > 0.0 {
            active.push("regulator");
        }
        if self.kills.rate > 0.0 && self.kills.window.overlaps(self.horizon_ms) {
            active.push("kills");
        }
        if self.mode_churn.rate > 0.0 && self.mode_churn.window.overlaps(self.horizon_ms) {
            active.push("mode_churn");
        }
        if self.flood.rate > 0.0 && self.flood.window.overlaps(self.horizon_ms) {
            active.push("flood");
        }
        if self.clock.rate > 0.0 && self.clock.window.overlaps(self.horizon_ms) {
            active.push("clock");
        }
        active
    }

    /// Serializes the plan as a JSON object. Floats are written as
    /// IEEE-754 bit patterns (with decimal duplicates for humans), so a
    /// parsed plan replays bit-identically.
    #[must_use]
    pub fn render_json(&self, indent: &str) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "{indent}  \"seed\": {},", self.seed);
        let _ = writeln!(
            s,
            "{indent}  \"horizon_ms\": {},",
            fmt_f64(self.horizon_ms, 3)
        );
        let _ = writeln!(
            s,
            "{indent}  \"horizon_bits\": \"{}\",",
            bits(self.horizon_ms)
        );
        let dims = [
            (
                "faults",
                self.faults.rate,
                Some(self.faults.factor),
                self.faults.window,
            ),
            (
                "regulator",
                self.regulator.rate,
                None,
                self.regulator.window,
            ),
            ("kills", self.kills.rate, None, self.kills.window),
            (
                "mode_churn",
                self.mode_churn.rate,
                None,
                self.mode_churn.window,
            ),
            ("flood", self.flood.rate, None, self.flood.window),
            ("clock", self.clock.rate, None, self.clock.window),
        ];
        for (i, (name, rate, factor, window)) in dims.iter().enumerate() {
            let _ = write!(
                s,
                "{indent}  \"{name}\": {{\"rate\": {}, \"rate_bits\": \"{}\", ",
                fmt_f64(*rate, 6),
                bits(*rate)
            );
            if let Some(f) = factor {
                let _ = write!(
                    s,
                    "\"factor\": {}, \"factor_bits\": \"{}\", ",
                    fmt_f64(*f, 6),
                    bits(*f)
                );
            }
            let _ = writeln!(
                s,
                "\"start_bits\": \"{}\", \"end_bits\": \"{}\"}}{}",
                bits(window.start_ms),
                bits(window.end_ms),
                if i + 1 < dims.len() { "," } else { "" }
            );
        }
        let _ = write!(s, "{indent}}}");
        s
    }

    /// Parses a plan back from its JSON object (bit-pattern fields only;
    /// the decimal duplicates are ignored). Crate-internal: external
    /// consumers round-trip plans through [`ReproArtifact`].
    pub(crate) fn from_json(value: &Json) -> Result<ChaosPlan, ArtifactError> {
        let window = |dim: &Json| -> Result<Window, ArtifactError> {
            Ok(Window {
                start_ms: bits_field(dim, "start_bits")?,
                end_ms: bits_field(dim, "end_bits")?,
            })
        };
        let faults = value.get("faults")?;
        let regulator = value.get("regulator")?;
        let kills = value.get("kills")?;
        let mode_churn = value.get("mode_churn")?;
        let flood = value.get("flood")?;
        // Plans serialized before the clock dimension existed omit the
        // key; read them as "clock faults off" so old repros stay
        // replayable.
        let clock = match value.get("clock") {
            Ok(dim) => ClockDim {
                rate: bits_field(dim, "rate_bits")?,
                window: window(dim)?,
            },
            Err(_) => ClockDim {
                rate: 0.0,
                window: Window::full(),
            },
        };
        Ok(ChaosPlan {
            seed: value.get("seed")?.as_u64()?,
            horizon_ms: bits_field(value, "horizon_bits")?,
            faults: FaultDim {
                rate: bits_field(faults, "rate_bits")?,
                factor: bits_field(faults, "factor_bits")?,
                window: window(faults)?,
            },
            regulator: RegulatorDim {
                rate: bits_field(regulator, "rate_bits")?,
                window: window(regulator)?,
            },
            kills: KillDim {
                rate: bits_field(kills, "rate_bits")?,
                window: window(kills)?,
            },
            mode_churn: ChurnDim {
                rate: bits_field(mode_churn, "rate_bits")?,
                window: window(mode_churn)?,
            },
            flood: FloodDim {
                rate: bits_field(flood, "rate_bits")?,
                window: window(flood)?,
            },
            clock,
        })
    }
}

fn bits(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn bits_field(value: &Json, key: &str) -> Result<f64, ArtifactError> {
    let s = value.get(key)?.as_str()?;
    let raw = u64::from_str_radix(s, 16)
        .map_err(|e| ArtifactError(format!("{key}: bad bit pattern {s:?}: {e}")))?;
    Ok(f64::from_bits(raw))
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

// ---------------------------------------------------------------------------
// Materialization
// ---------------------------------------------------------------------------

/// Every drawn sequence a campaign cell consumes, materialized up front.
/// Each field comes from its own child of the root stream, so the
/// property test in `tests/campaign.rs` can assert that toggling one
/// dimension leaves every other field byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSchedules {
    /// Per periodic task: `(base_state, fault_state)` PRNG words. Base
    /// demand draws come from the workload child, overrun draws from the
    /// faults child — the overrun *stream* exists (and is drawn from)
    /// even when the fault rate is 0, so toggling the dimension never
    /// shifts anything.
    pub body_streams: Vec<(u64, u64)>,
    /// Seed of the compliant tenant's open-loop generator (workload
    /// child).
    pub compliant_gen_seed: u64,
    /// Seed of the [`UnreliableRegulator`]'s failure plan.
    pub regulator_seed: u64,
    /// Brownout cap schedule `(instant, cap)` inside the regulator
    /// window.
    pub brownouts: Vec<(Time, Option<usize>)>,
    /// Kill instants inside the kill window.
    pub kills: Vec<Time>,
    /// Churn-transaction instants inside the churn window.
    pub churns: Vec<Time>,
    /// Seed of the flooding tenant's open-loop generator.
    pub flood_gen_seed: u64,
    /// Seed of the clock-fault oracle's plan (the oracle draws its own
    /// per-dimension streams from this at run time).
    pub clock_seed: u64,
}

/// Derives every schedule from the plan's root seed. Pure: two calls
/// with the same plan return identical schedules, and schedules for
/// plans differing in exactly one dimension differ only in that
/// dimension's field.
#[must_use]
pub fn materialize(plan: &ChaosPlan) -> CampaignSchedules {
    let root = SplitMix64::seed_from_u64(plan.seed);
    let workload = root.split(STREAM_WORKLOAD);
    let faults = root.split(STREAM_FAULTS);
    let body_streams = (0..RELAXED_TABLE2.len() as u64)
        .map(|i| (workload.split(i).state(), faults.split(i).state()))
        .collect();
    let compliant_gen_seed = workload.split(0x10).state();

    let mut reg = root.split(STREAM_REGULATOR);
    let regulator_seed = reg.next_u64();
    let brownouts = brownout_schedule(
        &mut reg,
        plan.regulator.rate,
        &plan.regulator.window,
        plan.horizon_ms,
    );

    let mut kill_stream = root.split(STREAM_KILLS);
    let kills = kill_schedule(
        &mut kill_stream,
        plan.kills.rate,
        &plan.kills.window,
        plan.horizon_ms,
    );

    let mut churn_stream = root.split(STREAM_CHURN);
    let churns = churn_schedule(
        &mut churn_stream,
        plan.mode_churn.rate,
        &plan.mode_churn.window,
        plan.horizon_ms,
    );

    let flood_gen_seed = root.split(STREAM_FLOOD).state();
    let clock_seed = root.split(STREAM_CLOCK).state();
    CampaignSchedules {
        body_streams,
        compliant_gen_seed,
        regulator_seed,
        brownouts,
        kills,
        churns,
        flood_gen_seed,
        clock_seed,
    }
}

/// One coin per slot regardless of rate or window (stable stream
/// positions); cap changes are emitted only inside the window, and an
/// imposed cap is lifted at the first boundary at or past the window end.
fn brownout_schedule(
    stream: &mut SplitMix64,
    rate: f64,
    window: &Window,
    horizon_ms: f64,
) -> Vec<(Time, Option<usize>)> {
    let mut schedule = Vec::new();
    let mut capped = false;
    let mut slot = 1u32;
    loop {
        let at_ms = BROWNOUT_SLOT_MS * f64::from(slot);
        if at_ms >= horizon_ms {
            return schedule;
        }
        let browned = stream.next_f64() < rate && window.contains(at_ms);
        if browned && !capped {
            schedule.push((Time::from_ms(at_ms), Some(BROWNOUT_CAP_POINT)));
            capped = true;
        } else if !browned && capped {
            schedule.push((Time::from_ms(at_ms), None));
            capped = false;
        }
        slot += 1;
    }
}

/// Two draws per slot (fire coin + position) regardless of rate or
/// window, so attenuating the dimension never shifts later slots.
fn kill_schedule(
    stream: &mut SplitMix64,
    rate: f64,
    window: &Window,
    horizon_ms: f64,
) -> Vec<Time> {
    let mut schedule = Vec::new();
    let mut slot = 0u32;
    loop {
        let slot_start = KILL_SLOT_MS * f64::from(slot);
        if slot_start >= horizon_ms {
            return schedule;
        }
        let fires = stream.next_f64() < rate;
        let frac = stream.next_f64();
        let at_ms = slot_start + frac * KILL_SLOT_MS;
        if fires && window.contains(at_ms) && at_ms < horizon_ms {
            schedule.push(Time::from_ms(at_ms));
        }
        slot += 1;
    }
}

/// One coin per slot regardless of rate or window.
fn churn_schedule(
    stream: &mut SplitMix64,
    rate: f64,
    window: &Window,
    horizon_ms: f64,
) -> Vec<Time> {
    let mut schedule = Vec::new();
    let mut slot = 1u32;
    loop {
        let at_ms = CHURN_SLOT_MS * f64::from(slot);
        if at_ms >= horizon_ms {
            return schedule;
        }
        if stream.next_f64() < rate && window.contains(at_ms) {
            schedule.push(Time::from_ms(at_ms));
        }
        slot += 1;
    }
}

/// Maps a time window onto an [`OverrunBody`] invocation window for a
/// task of the given period: the invocations whose nominal release falls
/// inside the window (invocation k releases near `(k-1) * period`).
fn invocation_window(window: &Window, period_ms: f64) -> (u64, u64) {
    let from = if window.start_ms <= 0.0 {
        1
    } else {
        (window.start_ms / period_ms).floor() as u64 + 1
    };
    let until = if window.end_ms.is_finite() {
        (window.end_ms / period_ms).ceil() as u64 + 1
    } else {
        u64::MAX
    };
    (from, until)
}

// ---------------------------------------------------------------------------
// The cell runner
// ---------------------------------------------------------------------------

/// One policy's raw campaign outcome.
struct CellRun {
    energy: f64,
    blamed: u64,
    excused: u64,
    findings: Vec<Violation>,
    kills: u64,
    churn_commits: u64,
    clock_events: u64,
    compliant_offered: u64,
    flood_offered: u64,
    served: u64,
    stats: rtdvs_kernel::AvailabilityStats,
}

/// An event the drive loop injects between slots, in (time, priority)
/// order — checkpoints sort before kills at the same instant so a kill
/// always has the freshest snapshot.
enum Chaos {
    Brownout(Option<usize>),
    Churn,
    Checkpoint,
    Kill,
}

fn compliant_spec() -> OpenLoopSpec {
    OpenLoopSpec {
        mean_interarrival_ms: 1.4,
        interarrival_cap: 40.0,
        mean_work_ms: MEAN_WORK_MS,
        work_jitter: 0.5,
        diurnal_period_ms: 60_000.0,
        diurnal_depth: 0.05,
    }
}

fn flood_spec(rate: f64) -> OpenLoopSpec {
    OpenLoopSpec {
        mean_interarrival_ms: FLOOD_BASE_GAP_MS / rate,
        interarrival_cap: 40.0,
        mean_work_ms: MEAN_WORK_MS,
        work_jitter: 0.5,
        diurnal_period_ms: 60_000.0,
        diurnal_depth: 0.3,
    }
}

fn attach_adversity(kernel: &mut RtKernel, plan: &ChaosPlan, sched: &CampaignSchedules) {
    if plan.regulator.rate > 0.0 {
        let cpu = PowerNowCpu::k6_2_plus_550();
        kernel.attach_regulator(Box::new(UnreliableRegulator::new(
            cpu,
            regulator_plan(sched.regulator_seed, plan.regulator.rate),
        )));
    }
    if plan.clock.rate > 0.0 && plan.clock.window.overlaps(plan.horizon_ms) {
        let mut p = clock_plan(sched.clock_seed, plan.clock.rate);
        if plan.clock.window.start_ms > 0.0 || plan.clock.window.end_ms.is_finite() {
            p = p.with_window(
                Time::from_ms(plan.clock.window.start_ms.max(0.0)),
                Time::from_ms(plan.clock.window.end_ms),
            );
        }
        kernel.set_clock_plan(p);
    }
}

/// Runs one policy through the full campaign: relaxed Table 2 under
/// windowed overruns, a two-lane tenant server, the unreliable regulator
/// with brownout caps, churn transactions, periodic checkpoints, and
/// kills revived from the latest snapshot.
fn run_cell(
    kind: PolicyKind,
    plan: &ChaosPlan,
    sched: &CampaignSchedules,
    avail: &AvailabilityPolicy,
) -> CellRun {
    let cpu = PowerNowCpu::k6_2_plus_550();
    let machine = cpu.machine().expect("prototype machine is valid");
    let mut kernel =
        RtKernel::new(machine, kind).with_accounted_switch_overhead(cpu.switch_overhead());
    attach_adversity(&mut kernel, plan, sched);

    let faults_on = plan.faults.rate > 0.0 && plan.faults.window.overlaps(plan.horizon_ms);
    let (rate, factor) = if faults_on {
        (plan.faults.rate, plan.faults.factor)
    } else {
        (0.0, 1.0)
    };
    let mut handles = Vec::new();
    for (i, &(period, wcet)) in RELAXED_TABLE2.iter().enumerate() {
        let (base_state, fault_state) = sched.body_streams[i];
        let (from, until) = invocation_window(&plan.faults.window, period);
        let h = kernel
            .spawn(
                Time::from_ms(period),
                Work::from_ms(wcet),
                Box::new(OverrunBody::from_state(
                    base_state,
                    fault_state,
                    rate,
                    factor,
                    from,
                    until,
                )),
            )
            .expect("the relaxed Table 2 set is admitted beside the server");
        handles.push(h);
    }
    let quotas = [
        TenantQuota::new(
            TenantId::from_raw(1),
            Work::from_ms(COMPLIANT_QUOTA_MS),
            COMPLIANT_BACKLOG,
        ),
        TenantQuota::new(
            TenantId::from_raw(2),
            Work::from_ms(FLOOD_QUOTA_MS),
            FLOOD_BACKLOG,
        ),
    ];
    let (_h, server) = kernel
        .spawn_tenant_server(
            Time::from_ms(SERVER_PERIOD_MS),
            Work::from_ms(SERVER_BUDGET_MS),
            &quotas,
        )
        .expect("the two-lane server fits beside the relaxed set");
    let mut server: TenantServer = server;

    let mut compliant = OpenLoopGen::new(compliant_spec(), sched.compliant_gen_seed, 1)
        .expect("the compliant spec is well-formed");
    let flood_on = plan.flood.rate > 0.0 && plan.flood.window.overlaps(plan.horizon_ms);
    let mut flood = if flood_on {
        Some(
            OpenLoopGen::new(flood_spec(plan.flood.rate), sched.flood_gen_seed, 2)
                .expect("the flood spec is well-formed"),
        )
    } else {
        None
    };

    // Merge the chaos schedules into one (time, priority)-ordered list.
    let mut events: Vec<(Time, u8, Chaos)> = Vec::new();
    for &(at, cap) in &sched.brownouts {
        events.push((at, 0, Chaos::Brownout(cap)));
    }
    for &at in &sched.churns {
        events.push((at, 1, Chaos::Churn));
    }
    let mut k = 1u32;
    loop {
        let at_ms = CHECKPOINT_MS * f64::from(k);
        if at_ms >= plan.horizon_ms {
            break;
        }
        events.push((Time::from_ms(at_ms), 2, Chaos::Checkpoint));
        k += 1;
    }
    for &at in &sched.kills {
        events.push((at, 3, Chaos::Kill));
    }
    events.sort_by(|a, b| a.0.as_ms().total_cmp(&b.0.as_ms()).then(a.1.cmp(&b.1)));

    let mut last_snap: Snapshot = kernel
        .checkpoint()
        .expect("a freshly-built kernel checkpoints");
    let mut kills_applied = 0u64;
    let mut churn_commits = 0u64;
    let mut relaxed = false;
    let mut compliant_offered = 0u64;
    let mut flood_offered = 0u64;
    let mut compliant_work = 0.0f64;
    let mut flood_work = 0.0f64;
    let mut served = 0u64;
    let mut batch: Vec<Request> = Vec::new();
    let mut ei = 0usize;
    let n_slots = (plan.horizon_ms / SLOT_MS).floor() as u64;
    let nominal_wcet = Work::from_ms(RELAXED_TABLE2[0].1);
    for b in 1..=n_slots {
        let t = Time::from_ms(SLOT_MS * b as f64);
        batch.clear();
        compliant.drain_until(t.as_ms(), &mut batch);
        for r in &batch {
            compliant_offered += 1;
            compliant_work += r.work_ms;
            server.submit(
                TenantId::from_raw(1),
                Work::from_ms(r.work_ms),
                Time::from_ms(r.at_ms),
            );
        }
        if let Some(gen) = flood.as_mut() {
            batch.clear();
            gen.drain_until(t.as_ms(), &mut batch);
            for r in &batch {
                if !plan.flood.window.contains(r.at_ms) {
                    continue;
                }
                flood_offered += 1;
                flood_work += r.work_ms;
                server.submit(
                    TenantId::from_raw(2),
                    Work::from_ms(r.work_ms),
                    Time::from_ms(r.at_ms),
                );
            }
        }
        while ei < events.len() && events[ei].0.as_ms() <= t.as_ms() {
            let at = events[ei].0;
            if kernel.now().as_ms() < at.as_ms() {
                kernel.run_until(at);
            }
            match events[ei].2 {
                Chaos::Brownout(cap) => kernel.set_brownout_cap(cap),
                Chaos::Churn => {
                    let target = if relaxed {
                        Time::from_ms(RELAXED_TABLE2[0].0)
                    } else {
                        Time::from_ms(CHURN_RELAXED_PERIOD_MS)
                    };
                    // A staged-but-uncommitted transaction or a transient
                    // infeasibility just skips this slot's toggle — under
                    // composed chaos any rejection reason is acceptable.
                    if kernel
                        .submit_mode_change(ModeChange::new().reparam(
                            handles[0],
                            target,
                            nominal_wcet,
                        ))
                        .is_ok()
                    {
                        relaxed = !relaxed;
                        churn_commits += 1;
                    }
                }
                Chaos::Checkpoint => {
                    // A transaction staged across the checkpoint instant
                    // refuses the snapshot; keep the previous one (that is
                    // what a kill will rewind to).
                    if let Ok(s) = kernel.checkpoint() {
                        last_snap = s;
                    }
                }
                Chaos::Kill => {
                    let (revived, _servers) = last_snap
                        .restore()
                        .expect("campaign snapshots restore cleanly");
                    kernel = revived;
                    kernel.mark_restored();
                    attach_adversity(&mut kernel, plan, sched);
                    server = kernel.tenant_servers()[0].1.clone();
                    kills_applied += 1;
                }
            }
            ei += 1;
        }
        if kernel.now().as_ms() < t.as_ms() {
            kernel.run_until(t);
        }
        for lane in [1u64, 2] {
            served += server.take_completed(TenantId::from_raw(lane)).len() as u64;
        }
    }

    // Blame classification: once any hardware adversity, restore, clock
    // fault, or injected overrun is in the log, the admission premises
    // are void and later misses are excused; a miss before all of that
    // is a policy bug.
    let mut adversity_acted = false;
    let mut blamed = 0u64;
    let mut excused = 0u64;
    let mut clock_events = 0u64;
    for (_, event) in kernel.log() {
        match event {
            KernelEvent::RegulatorFallback { .. }
            | KernelEvent::BrownoutCapSet { .. }
            | KernelEvent::LadderStepped { .. }
            | KernelEvent::SupervisorRestored
            | KernelEvent::Overrun { .. } => adversity_acted = true,
            KernelEvent::ClockTickGap { .. }
            | KernelEvent::ClockJumpClamped { .. }
            | KernelEvent::ClockWatchdog { .. }
            | KernelEvent::ReleaseLate { .. } => {
                adversity_acted = true;
                clock_events += 1;
            }
            KernelEvent::DeadlineMiss { .. } => {
                if adversity_acted {
                    excused += 1;
                } else {
                    blamed += 1;
                }
            }
            _ => {}
        }
    }

    let n_periods = n_slots.max(1);
    let standings = [
        TenantStanding {
            tenant: 1,
            over_quota: compliant_work > COMPLIANT_QUOTA_MS * n_periods as f64,
            shed: server.lane_stats()[0].shed,
            rejected: server.lane_stats()[0].rejected,
        },
        TenantStanding {
            tenant: 2,
            over_quota: flood_work > FLOOD_QUOTA_MS * n_periods as f64,
            shed: server.lane_stats()[1].shed,
            rejected: server.lane_stats()[1].rejected,
        },
    ];
    let rungs = kernel.ladder_rung_names();
    let mut findings: Vec<Violation> = audit_kernel_log(kernel.log())
        .into_iter()
        .filter(|v| v.rule != Rule::DeadlineMiss)
        .collect();
    findings.extend(audit_tenant_isolation(&standings, kernel.log()));
    findings.extend(audit_availability(
        kernel.log(),
        kernel.now(),
        &rungs,
        avail,
    ));
    findings.sort_by(|a, b| {
        a.time
            .as_ms()
            .total_cmp(&b.time.as_ms())
            .then_with(|| a.rule.as_str().cmp(b.rule.as_str()))
    });
    let stats = kernel.availability();
    CellRun {
        energy: kernel.energy(),
        blamed,
        excused,
        findings,
        kills: kills_applied,
        churn_commits,
        clock_events,
        compliant_offered,
        flood_offered,
        served,
        stats,
    }
}

// ---------------------------------------------------------------------------
// The campaign artifact
// ---------------------------------------------------------------------------

/// Shape of one campaign run.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Policies to run, in column order.
    pub policies: Vec<PolicyKind>,
    /// The composed plan (shared across policies: every column faces
    /// identical adversity).
    pub plan: ChaosPlan,
    /// The availability contract each cell is audited against.
    pub availability: AvailabilityPolicy,
}

/// The committed campaign shape behind `BENCH_campaign.json` and the CI
/// campaign-smoke job: all six paper policies, three seconds of virtual
/// time, every dimension active with phased windows. Small enough to
/// re-run on every push.
#[must_use]
pub fn campaign_smoke_config(seed: u64) -> CampaignConfig {
    CampaignConfig {
        policies: PolicyKind::paper_six().to_vec(),
        plan: ChaosPlan {
            seed,
            horizon_ms: 3000.0,
            faults: FaultDim {
                rate: 0.05,
                factor: 1.5,
                window: Window::span(500.0, 2500.0),
            },
            regulator: RegulatorDim {
                rate: 0.05,
                window: Window::full(),
            },
            kills: KillDim {
                rate: 0.6,
                window: Window::span(500.0, 2600.0),
            },
            mode_churn: ChurnDim {
                rate: 0.2,
                window: Window::full(),
            },
            flood: FloodDim {
                rate: 1.0,
                window: Window::span(1000.0, 2000.0),
            },
            clock: ClockDim {
                rate: 0.25,
                window: Window::span(250.0, 2750.0),
            },
        },
        availability: AvailabilityPolicy {
            max_recovery_ms: 150.0,
            min_availability: 0.1,
        },
    }
}

/// One policy's campaign outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCell {
    /// Policy name.
    pub policy: String,
    /// Misses with no adversity event before them (gated to 0).
    pub blamed_misses: u64,
    /// Misses excused by prior adversity.
    pub excused_misses: u64,
    /// Audit findings: lifecycle + tenant isolation + availability
    /// (gated to 0).
    pub audit_findings: u64,
    /// Kills applied by the drive loop.
    pub kills: u64,
    /// Restores visible in the final (stitched) log — at most `kills`,
    /// fewer when a later kill rewound past an earlier restore.
    pub restores: u64,
    /// Committed churn transactions.
    pub churn_commits: u64,
    /// Clock-fault events in the final log (tick gaps, clamped jumps,
    /// watchdog actions, late releases).
    pub clock_events: u64,
    /// Compliant-lane requests offered.
    pub compliant_offered: u64,
    /// Flood-lane requests offered (inside the flood window).
    pub flood_offered: u64,
    /// Requests served across both lanes (as observed by the drive loop;
    /// completions lost to a crash rewind are not re-counted).
    pub served: u64,
    /// Kernel energy over the horizon.
    pub energy: f64,
    /// Fraction of the horizon fully nominal.
    pub availability: f64,
    /// Nominal milliseconds.
    pub nominal_ms: f64,
    /// Degraded milliseconds.
    pub degraded_ms: f64,
    /// Mean time to failure, ms.
    pub mttf_ms: f64,
    /// Mean time to repair, ms.
    pub mttr_ms: f64,
    /// Worst restore-to-completion gap, ms.
    pub worst_recovery_ms: f64,
    /// Time at each ladder rung (index = depth), ms.
    pub rung_ms: Vec<f64>,
}

/// A complete campaign artifact (`rtdvs-campaign/v1`).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignArtifact {
    /// Root seed of the plan.
    pub seed: u64,
    /// Horizon, ms.
    pub horizon_ms: f64,
    /// Active dimensions of the plan, canonical order.
    pub dimensions: Vec<String>,
    /// Recovery bound each cell was audited against, ms.
    pub max_recovery_ms: f64,
    /// Availability floor each cell was audited against.
    pub min_availability: f64,
    /// Per-policy outcomes, column order.
    pub cells: Vec<CampaignCell>,
    /// Wall clock (provenance; zeroed in canonical form).
    pub wall_ms: u64,
}

impl CampaignArtifact {
    /// Serializes the artifact, provenance included.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.render(false)
    }

    /// Serializes the machine-independent payload (`wall_ms` zeroed);
    /// gate comparisons diff this form byte-for-byte.
    #[must_use]
    pub fn canonical_json(&self) -> String {
        self.render(true)
    }

    fn render(&self, canonical: bool) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{\n  \"schema\": \"{CAMPAIGN_SCHEMA}\",");
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(s, "  \"horizon_ms\": {},", fmt_f64(self.horizon_ms, 3));
        let dims: Vec<String> = self.dimensions.iter().map(|d| format!("\"{d}\"")).collect();
        let _ = writeln!(s, "  \"dimensions\": [{}],", dims.join(", "));
        let _ = writeln!(
            s,
            "  \"max_recovery_ms\": {},",
            fmt_f64(self.max_recovery_ms, 3)
        );
        let _ = writeln!(
            s,
            "  \"min_availability\": {},",
            fmt_f64(self.min_availability, 4)
        );
        let _ = writeln!(s, "  \"cells\": [");
        for (i, c) in self.cells.iter().enumerate() {
            let rungs: Vec<String> = c.rung_ms.iter().map(|r| fmt_f64(*r, 3)).collect();
            let _ = writeln!(
                s,
                "    {{\"policy\": \"{}\", \"blamed_misses\": {}, \"excused_misses\": {}, \
                 \"audit_findings\": {}, \"kills\": {}, \"restores\": {}, \
                 \"churn_commits\": {}, \"clock_events\": {}, \"compliant_offered\": {}, \
                 \"flood_offered\": {}, \
                 \"served\": {}, \"energy\": {}, \"availability\": {}, \"nominal_ms\": {}, \
                 \"degraded_ms\": {}, \"mttf_ms\": {}, \"mttr_ms\": {}, \
                 \"worst_recovery_ms\": {}, \"rung_ms\": [{}]}}{}",
                c.policy,
                c.blamed_misses,
                c.excused_misses,
                c.audit_findings,
                c.kills,
                c.restores,
                c.churn_commits,
                c.clock_events,
                c.compliant_offered,
                c.flood_offered,
                c.served,
                fmt_f64(c.energy, 9),
                fmt_f64(c.availability, 6),
                fmt_f64(c.nominal_ms, 3),
                fmt_f64(c.degraded_ms, 3),
                fmt_f64(c.mttf_ms, 3),
                fmt_f64(c.mttr_ms, 3),
                fmt_f64(c.worst_recovery_ms, 3),
                rungs.join(", "),
                if i + 1 < self.cells.len() { "," } else { "" }
            );
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(
            s,
            "  \"wall_ms\": {}\n}}",
            if canonical { 0 } else { self.wall_ms }
        );
        s
    }

    /// Parses an artifact back from its JSON form (unknown keys are
    /// ignored, as in the other artifact readers).
    ///
    /// # Errors
    ///
    /// Returns the first structural problem: malformed JSON, wrong
    /// schema identifier, or a missing/ill-typed field.
    pub fn from_json(text: &str) -> Result<CampaignArtifact, ArtifactError> {
        let value = Json::parse(text)?;
        let schema = value.get("schema")?.as_str()?;
        if schema != CAMPAIGN_SCHEMA {
            return Err(ArtifactError(format!(
                "schema mismatch: artifact says {schema:?}, reader speaks {CAMPAIGN_SCHEMA:?}"
            )));
        }
        let dimensions = value
            .get("dimensions")?
            .as_array()?
            .iter()
            .map(|d| Ok(d.as_str()?.to_owned()))
            .collect::<Result<Vec<_>, ArtifactError>>()?;
        let cells = value
            .get("cells")?
            .as_array()?
            .iter()
            .map(|c| {
                Ok(CampaignCell {
                    policy: c.get("policy")?.as_str()?.to_owned(),
                    blamed_misses: c.get("blamed_misses")?.as_u64()?,
                    excused_misses: c.get("excused_misses")?.as_u64()?,
                    audit_findings: c.get("audit_findings")?.as_u64()?,
                    kills: c.get("kills")?.as_u64()?,
                    restores: c.get("restores")?.as_u64()?,
                    churn_commits: c.get("churn_commits")?.as_u64()?,
                    clock_events: c.get("clock_events").map_or(Ok(0), |v| v.as_u64())?,
                    compliant_offered: c.get("compliant_offered")?.as_u64()?,
                    flood_offered: c.get("flood_offered")?.as_u64()?,
                    served: c.get("served")?.as_u64()?,
                    energy: c.get("energy")?.as_f64()?,
                    availability: c.get("availability")?.as_f64()?,
                    nominal_ms: c.get("nominal_ms")?.as_f64()?,
                    degraded_ms: c.get("degraded_ms")?.as_f64()?,
                    mttf_ms: c.get("mttf_ms")?.as_f64()?,
                    mttr_ms: c.get("mttr_ms")?.as_f64()?,
                    worst_recovery_ms: c.get("worst_recovery_ms")?.as_f64()?,
                    rung_ms: c
                        .get("rung_ms")?
                        .as_array()?
                        .iter()
                        .map(Json::as_f64)
                        .collect::<Result<Vec<_>, _>>()?,
                })
            })
            .collect::<Result<Vec<_>, ArtifactError>>()?;
        Ok(CampaignArtifact {
            seed: value.get("seed")?.as_u64()?,
            horizon_ms: value.get("horizon_ms")?.as_f64()?,
            dimensions,
            max_recovery_ms: value.get("max_recovery_ms")?.as_f64()?,
            min_availability: value.get("min_availability")?.as_f64()?,
            cells,
            wall_ms: value.get("wall_ms")?.as_u64()?,
        })
    }

    /// The invariants any passing campaign obeys. Non-empty means the
    /// composed system broke a promise.
    #[must_use]
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.cells.is_empty() {
            problems.push("no cells in the artifact".to_owned());
        }
        let kills_on = self.dimensions.iter().any(|d| d == "kills");
        let flood_on = self.dimensions.iter().any(|d| d == "flood");
        let churn_on = self.dimensions.iter().any(|d| d == "mode_churn");
        let clock_on = self.dimensions.iter().any(|d| d == "clock");
        for c in &self.cells {
            let who = &c.policy;
            if c.blamed_misses != 0 {
                problems.push(format!(
                    "{who}: {} policy-blamed miss(es) — a miss before any adversity is a real bug",
                    c.blamed_misses
                ));
            }
            if c.audit_findings != 0 {
                problems.push(format!(
                    "{who}: {} audit finding(s) in the composed replay",
                    c.audit_findings
                ));
            }
            if c.restores > c.kills {
                problems.push(format!(
                    "{who}: {} restore(s) in the log but only {} kill(s) applied",
                    c.restores, c.kills
                ));
            }
            if kills_on && (c.kills == 0 || c.restores == 0) {
                problems.push(format!(
                    "{who}: kill dimension active but kills={} restores={}",
                    c.kills, c.restores
                ));
            }
            if flood_on && c.flood_offered == 0 {
                problems.push(format!("{who}: flood dimension active but nothing offered"));
            }
            if churn_on && c.churn_commits == 0 {
                problems.push(format!(
                    "{who}: churn dimension active but nothing committed"
                ));
            }
            if clock_on && c.clock_events == 0 {
                problems.push(format!(
                    "{who}: clock dimension active but no clock event ever fired"
                ));
            }
            if c.compliant_offered == 0 || c.served == 0 {
                problems.push(format!("{who}: tenant serving was dead"));
            }
            if c.availability < self.min_availability {
                problems.push(format!(
                    "{who}: availability {} below the floor {}",
                    fmt_f64(c.availability, 6),
                    fmt_f64(self.min_availability, 4)
                ));
            }
            if c.rung_ms.is_empty() {
                problems.push(format!("{who}: empty ladder histogram"));
            }
        }
        problems
    }
}

/// Differences in the canonical payload between a golden and a fresh
/// artifact. Empty means byte-identical (modulo `wall_ms`).
#[must_use]
pub fn compare_campaign(golden: &CampaignArtifact, fresh: &CampaignArtifact) -> Vec<String> {
    let mut problems = Vec::new();
    if golden.canonical_json() != fresh.canonical_json() {
        if golden.seed != fresh.seed {
            problems.push(format!("seed {} vs golden {}", fresh.seed, golden.seed));
        }
        if golden.cells.len() != fresh.cells.len() {
            problems.push(format!(
                "{} cells vs golden {}",
                fresh.cells.len(),
                golden.cells.len()
            ));
        }
        for (g, f) in golden.cells.iter().zip(&fresh.cells) {
            if g != f {
                problems.push(format!(
                    "{}: kills {} restores {} served {} availability {} vs golden kills {} \
                     restores {} served {} availability {}",
                    f.policy,
                    f.kills,
                    f.restores,
                    f.served,
                    fmt_f64(f.availability, 6),
                    g.kills,
                    g.restores,
                    g.served,
                    fmt_f64(g.availability, 6)
                ));
            }
        }
        if problems.is_empty() {
            problems.push("canonical payloads differ".to_owned());
        }
    }
    problems
}

/// Runs the full campaign — every policy against the same materialized
/// schedules — and packs it into the artifact. Deterministic in `cfg`
/// alone except `wall_ms`.
#[must_use]
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignArtifact {
    assert!(
        !cfg.policies.is_empty(),
        "campaign needs at least one policy"
    );
    assert!(
        cfg.plan.horizon_ms > 0.0,
        "campaign needs a positive horizon"
    );
    let start = Instant::now();
    let sched = materialize(&cfg.plan);
    let cells = cfg
        .policies
        .iter()
        .map(|&kind| {
            let run = run_cell(kind, &cfg.plan, &sched, &cfg.availability);
            CampaignCell {
                policy: kind.name().to_owned(),
                blamed_misses: run.blamed,
                excused_misses: run.excused,
                audit_findings: run.findings.len() as u64,
                kills: run.kills,
                restores: run.stats.outages,
                churn_commits: run.churn_commits,
                clock_events: run.clock_events,
                compliant_offered: run.compliant_offered,
                flood_offered: run.flood_offered,
                served: run.served,
                energy: run.energy,
                availability: run.stats.availability(),
                nominal_ms: run.stats.nominal_ms,
                degraded_ms: run.stats.degraded_ms,
                mttf_ms: run.stats.mttf_ms(),
                mttr_ms: run.stats.mttr_ms(),
                worst_recovery_ms: run.stats.worst_recovery_ms,
                rung_ms: run.stats.rung_ms.clone(),
            }
        })
        .collect();
    CampaignArtifact {
        seed: cfg.plan.seed,
        horizon_ms: cfg.plan.horizon_ms,
        dimensions: cfg
            .plan
            .active_dimensions()
            .into_iter()
            .map(str::to_owned)
            .collect(),
        max_recovery_ms: cfg.availability.max_recovery_ms,
        min_availability: cfg.availability.min_availability,
        cells,
        wall_ms: start.elapsed().as_millis() as u64,
    }
}

// ---------------------------------------------------------------------------
// Repro minimization
// ---------------------------------------------------------------------------

/// The violation a repro artifact pins, with its time as an IEEE-754 bit
/// pattern so replay equality is bit-exact.
#[derive(Debug, Clone, PartialEq)]
pub struct ReproViolation {
    /// [`Rule::as_str`] of the broken rule.
    pub rule: String,
    /// When it was observed, ms.
    pub time_ms: f64,
    /// The violation's details string.
    pub details: String,
}

/// A minimized, deterministically-replayable repro (`rtdvs-repro/v1`).
#[derive(Debug, Clone, PartialEq)]
pub struct ReproArtifact {
    /// Policy name of the violating cell.
    pub policy: String,
    /// Recovery bound the cell was audited against, ms.
    pub max_recovery_ms: f64,
    /// Availability floor the cell was audited against.
    pub min_availability: f64,
    /// The minimized plan.
    pub plan: ChaosPlan,
    /// The pinned violation.
    pub violation: ReproViolation,
}

impl ReproArtifact {
    /// Serializes the repro artifact.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{\n  \"schema\": \"{REPRO_SCHEMA}\",");
        let _ = writeln!(s, "  \"policy\": \"{}\",", self.policy);
        let _ = writeln!(
            s,
            "  \"max_recovery_ms\": {},",
            fmt_f64(self.max_recovery_ms, 3)
        );
        let _ = writeln!(
            s,
            "  \"max_recovery_bits\": \"{}\",",
            bits(self.max_recovery_ms)
        );
        let _ = writeln!(
            s,
            "  \"min_availability\": {},",
            fmt_f64(self.min_availability, 4)
        );
        let _ = writeln!(
            s,
            "  \"min_availability_bits\": \"{}\",",
            bits(self.min_availability)
        );
        let _ = writeln!(s, "  \"plan\": {},", self.plan.render_json("  "));
        let _ = writeln!(
            s,
            "  \"violation\": {{\"rule\": \"{}\", \"time_ms\": {}, \"time_bits\": \"{}\", \
             \"details\": \"{}\"}}",
            self.violation.rule,
            fmt_f64(self.violation.time_ms, 6),
            bits(self.violation.time_ms),
            json_escape(&self.violation.details)
        );
        let _ = writeln!(s, "}}");
        s
    }

    /// Parses a repro artifact back from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns the first structural problem: malformed JSON, wrong
    /// schema identifier, or a missing/ill-typed field.
    pub fn from_json(text: &str) -> Result<ReproArtifact, ArtifactError> {
        let value = Json::parse(text)?;
        let schema = value.get("schema")?.as_str()?;
        if schema != REPRO_SCHEMA {
            return Err(ArtifactError(format!(
                "schema mismatch: artifact says {schema:?}, reader speaks {REPRO_SCHEMA:?}"
            )));
        }
        let violation = value.get("violation")?;
        Ok(ReproArtifact {
            policy: value.get("policy")?.as_str()?.to_owned(),
            max_recovery_ms: bits_field(&value, "max_recovery_bits")?,
            min_availability: bits_field(&value, "min_availability_bits")?,
            plan: ChaosPlan::from_json(value.get("plan")?)?,
            violation: ReproViolation {
                rule: violation.get("rule")?.as_str()?.to_owned(),
                time_ms: bits_field(violation, "time_bits")?,
                details: violation.get("details")?.as_str()?.to_owned(),
            },
        })
    }
}

/// Maps a policy name back to its [`PolicyKind`] (paper-six only — the
/// campaign never runs anything else).
#[must_use]
pub fn policy_by_name(name: &str) -> Option<PolicyKind> {
    PolicyKind::paper_six()
        .into_iter()
        .find(|k| k.name() == name)
}

/// The audit findings one `(policy, plan, availability)` cell produces,
/// in deterministic (time, rule) order.
#[must_use]
pub fn cell_findings(
    kind: PolicyKind,
    plan: &ChaosPlan,
    avail: &AvailabilityPolicy,
) -> Vec<Violation> {
    let sched = materialize(plan);
    run_cell(kind, plan, &sched, avail).findings
}

/// Number of shrinkable dimensions in a [`ChaosPlan`].
const N_DIMS: usize = 6;

fn dim_rate(plan: &ChaosPlan, d: usize) -> f64 {
    match d {
        0 => plan.faults.rate,
        1 => plan.regulator.rate,
        2 => plan.kills.rate,
        3 => plan.mode_churn.rate,
        4 => plan.flood.rate,
        _ => plan.clock.rate,
    }
}

fn set_dim_rate(plan: &mut ChaosPlan, d: usize, rate: f64) {
    match d {
        0 => plan.faults.rate = rate,
        1 => plan.regulator.rate = rate,
        2 => plan.kills.rate = rate,
        3 => plan.mode_churn.rate = rate,
        4 => plan.flood.rate = rate,
        _ => plan.clock.rate = rate,
    }
}

fn clip_windows(plan: &mut ChaosPlan) {
    for w in [
        &mut plan.faults.window,
        &mut plan.regulator.window,
        &mut plan.kills.window,
        &mut plan.mode_churn.window,
        &mut plan.flood.window,
        &mut plan.clock.window,
    ] {
        w.end_ms = w.end_ms.min(plan.horizon_ms);
    }
}

/// Delta-debugs `plan` down to a minimal repro of its first audit
/// violation: greedily disable whole dimensions to a fixpoint, then
/// halve the horizon (clipping windows) while the same rule still fires,
/// then halve the surviving rates. Every candidate edit re-runs the cell
/// and is kept only if a violation of the *same rule* reproduces — sound
/// because each dimension draws from its own split stream, so an edit
/// never shifts another dimension's sequence.
///
/// # Errors
///
/// Returns an error when the plan trips no audit violation at all.
pub fn shrink_plan(
    kind: PolicyKind,
    plan: &ChaosPlan,
    avail: &AvailabilityPolicy,
) -> Result<ReproArtifact, String> {
    let baseline = cell_findings(kind, plan, avail);
    let Some(target) = baseline.first() else {
        return Err(format!(
            "plan does not trip any audit violation under {} — nothing to minimize",
            kind.name()
        ));
    };
    let rule = target.rule;
    let reproduces = |p: &ChaosPlan| cell_findings(kind, p, avail).iter().any(|v| v.rule == rule);

    let mut cur = plan.clone();
    // Phase 1: disable whole dimensions, to a fixpoint.
    loop {
        let mut changed = false;
        for d in 0..N_DIMS {
            if dim_rate(&cur, d) <= 0.0 {
                continue;
            }
            let mut cand = cur.clone();
            set_dim_rate(&mut cand, d, 0.0);
            if reproduces(&cand) {
                cur = cand;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Phase 2: narrow the time window by halving the horizon.
    while cur.horizon_ms / 2.0 >= MIN_REPRO_HORIZON_MS {
        let mut cand = cur.clone();
        cand.horizon_ms /= 2.0;
        clip_windows(&mut cand);
        if reproduces(&cand) {
            cur = cand;
        } else {
            break;
        }
    }
    // Phase 3: attenuate the surviving rates.
    for d in 0..N_DIMS {
        for _ in 0..MAX_RATE_HALVINGS {
            let rate = dim_rate(&cur, d);
            if rate <= 0.0 {
                break;
            }
            let mut cand = cur.clone();
            set_dim_rate(&mut cand, d, rate / 2.0);
            if reproduces(&cand) {
                cur = cand;
            } else {
                break;
            }
        }
    }
    let witness = cell_findings(kind, &cur, avail)
        .into_iter()
        .find(|v| v.rule == rule)
        .expect("the shrunk plan was kept only because it reproduces");
    Ok(ReproArtifact {
        policy: kind.name().to_owned(),
        max_recovery_ms: avail.max_recovery_ms,
        min_availability: avail.min_availability,
        plan: cur,
        violation: ReproViolation {
            rule: rule.as_str().to_owned(),
            time_ms: witness.time.as_ms(),
            details: witness.details,
        },
    })
}

/// Replays a minimized repro and checks it reproduces the **identical**
/// violation: same rule, bit-identical time, byte-identical details.
///
/// # Errors
///
/// Describes what was found instead when the replay diverges.
pub fn replay_repro(repro: &ReproArtifact) -> Result<(), String> {
    let kind = policy_by_name(&repro.policy)
        .ok_or_else(|| format!("unknown policy {:?} in repro", repro.policy))?;
    let avail = AvailabilityPolicy {
        max_recovery_ms: repro.max_recovery_ms,
        min_availability: repro.min_availability,
    };
    let fresh = cell_findings(kind, &repro.plan, &avail);
    let hit = fresh.iter().any(|v| {
        v.rule.as_str() == repro.violation.rule
            && v.time.as_ms().to_bits() == repro.violation.time_ms.to_bits()
            && v.details == repro.violation.details
    });
    if hit {
        return Ok(());
    }
    let got: Vec<String> = fresh
        .iter()
        .map(|v| {
            format!(
                "[{}] t={} ms: {}",
                v.rule,
                fmt_f64(v.time.as_ms(), 6),
                v.details
            )
        })
        .collect();
    Err(format!(
        "repro did not reproduce: expected [{}] at {} ms ({}); replay produced {} finding(s){}{}",
        repro.violation.rule,
        fmt_f64(repro.violation.time_ms, 6),
        repro.violation.details,
        fresh.len(),
        if got.is_empty() { "" } else { ":\n  " },
        got.join("\n  ")
    ))
}

/// A plan that provably violates its availability contract: the
/// regulator fails every transition, so the degradation ladder walks to
/// the bottom early and the run spends most of the horizon below the
/// preferred policy — far under the declared 0.9 floor. The other
/// dimensions ride along at mild rates so the shrinker has something to
/// strip. `tests/campaign.rs` pins that this shrinks to a repro with at
/// most 2 active dimensions and at most 10% of the original horizon.
#[must_use]
pub fn known_violating_campaign(seed: u64) -> (PolicyKind, ChaosPlan, AvailabilityPolicy) {
    (
        PolicyKind::CcEdf,
        ChaosPlan {
            seed,
            horizon_ms: 4000.0,
            faults: FaultDim {
                rate: 0.05,
                factor: 1.5,
                window: Window::full(),
            },
            regulator: RegulatorDim {
                rate: 1.0,
                window: Window::full(),
            },
            kills: KillDim {
                rate: 0.3,
                window: Window::span(500.0, 3500.0),
            },
            mode_churn: ChurnDim {
                rate: 0.2,
                window: Window::full(),
            },
            flood: FloodDim {
                rate: 1.0,
                window: Window::span(1000.0, 3000.0),
            },
            clock: ClockDim {
                rate: 0.0,
                window: Window::full(),
            },
        },
        AvailabilityPolicy {
            max_recovery_ms: 200.0,
            min_availability: 0.9,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(seed: u64) -> ChaosPlan {
        campaign_smoke_config(seed).plan
    }

    #[test]
    fn materialize_is_deterministic() {
        let p = plan(7);
        assert_eq!(materialize(&p), materialize(&p));
    }

    #[test]
    fn schedules_respect_their_windows() {
        let p = plan(11);
        let sched = materialize(&p);
        for &at in &sched.kills {
            assert!(p.kills.window.contains(at.as_ms()), "kill at {at}");
        }
        for &at in &sched.churns {
            assert!(p.mode_churn.window.contains(at.as_ms()), "churn at {at}");
        }
        for &(at, _) in &sched.brownouts {
            assert!(at.as_ms() < p.horizon_ms);
        }
    }

    #[test]
    fn zero_rates_produce_empty_schedules() {
        let mut p = plan(13);
        p.kills.rate = 0.0;
        p.mode_churn.rate = 0.0;
        p.regulator.rate = 0.0;
        let sched = materialize(&p);
        assert!(sched.kills.is_empty());
        assert!(sched.churns.is_empty());
        assert!(sched.brownouts.is_empty());
        assert!(p.active_dimensions() == vec!["faults", "flood", "clock"]);
        p.clock.rate = 0.0;
        assert!(p.active_dimensions() == vec!["faults", "flood"]);
    }

    #[test]
    fn invocation_window_maps_release_times() {
        let (from, until) = invocation_window(&Window::span(500.0, 2500.0), 16.0);
        // Invocation k releases near (k-1)*16 ms; 500/16 = 31.25, so the
        // first windowed invocation releases at 512 ms (k = 33).
        assert_eq!(from, 32);
        assert_eq!(until, 158);
        let (from, until) = invocation_window(&Window::full(), 16.0);
        assert_eq!((from, until), (1, u64::MAX));
    }

    #[test]
    fn plan_json_round_trips_bit_exactly() {
        let mut p = plan(0xDEAD);
        p.faults.rate = 0.05 / 8.0; // a value decimal text would mangle
        let text = p.render_json("");
        let back = ChaosPlan::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(p, back);
        assert_eq!(p.faults.rate.to_bits(), back.faults.rate.to_bits());
    }

    #[test]
    fn repro_artifact_round_trips() {
        let (kind, p, avail) = known_violating_campaign(3);
        let repro = ReproArtifact {
            policy: kind.name().to_owned(),
            max_recovery_ms: avail.max_recovery_ms,
            min_availability: avail.min_availability,
            plan: p,
            violation: ReproViolation {
                rule: Rule::AvailabilityFloor.as_str().to_owned(),
                time_ms: 123.456,
                details: "availability 0.1 below floor 0.9 (\"quoted\")".to_owned(),
            },
        };
        let back = ReproArtifact::from_json(&repro.to_json()).unwrap();
        assert_eq!(repro, back);
    }

    #[test]
    fn campaign_artifact_round_trips_and_validates() {
        let art = CampaignArtifact {
            seed: 9,
            horizon_ms: 1000.0,
            dimensions: vec!["kills".to_owned(), "flood".to_owned()],
            max_recovery_ms: 150.0,
            min_availability: 0.1,
            cells: vec![CampaignCell {
                policy: "ccEDF".to_owned(),
                blamed_misses: 0,
                excused_misses: 3,
                audit_findings: 0,
                kills: 2,
                restores: 2,
                churn_commits: 0,
                clock_events: 0,
                compliant_offered: 700,
                flood_offered: 900,
                served: 1500,
                energy: 1.25,
                availability: 0.8,
                nominal_ms: 800.0,
                degraded_ms: 200.0,
                mttf_ms: 400.0,
                mttr_ms: 100.0,
                worst_recovery_ms: 20.0,
                rung_ms: vec![800.0, 150.0, 50.0],
            }],
            wall_ms: 42,
        };
        let back = CampaignArtifact::from_json(&art.to_json()).unwrap();
        assert_eq!(art, back);
        assert!(art.validate().is_empty(), "{:?}", art.validate());
        assert_eq!(art.canonical_json(), back.canonical_json());

        let mut broken = art.clone();
        broken.cells[0].blamed_misses = 1;
        broken.cells[0].audit_findings = 2;
        broken.cells[0].kills = 0;
        assert_eq!(broken.validate().len(), 4); // blamed, findings, restores>kills, kills-dim dead
    }

    #[test]
    fn policy_by_name_covers_paper_six() {
        for kind in PolicyKind::paper_six() {
            assert_eq!(policy_by_name(kind.name()), Some(kind));
        }
        assert_eq!(policy_by_name("nonesuch"), None);
    }
}
