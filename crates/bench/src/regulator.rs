//! Regulator-failure × brownout soak: unreliable-hardware sweeps with
//! blame accounting.
//!
//! Where the chaos soak injects faults *below* the simulator's hardware
//! line and the mode-churn soak stresses the kernel's transaction
//! machinery, this soak attacks the layer in between: the voltage
//! regulator itself. It drives every policy over a relaxed Table 2 set on
//! the prototype's K6-2+ machine while an [`UnreliableRegulator`] ignores
//! transitions, times out handshakes, and settles late — and, riding on
//! top, a brownout schedule clamps the operating-point set to a reduced
//! cap for whole slots at a time. The hardened transition driver must
//! absorb all of it: bounded retries, round-up-never-down fallbacks, the
//! policy degradation ladder, and the cap-aware feasibility test.
//!
//! The output reuses the `rtdvs-bench/v1` artifact with the axes
//! reinterpreted (grid label `"regulator-soak"`): `u` is the adversity
//! rate (per-attempt regulator failure probability, which also paces the
//! brownout slots), `energy_norm` is energy relative to the same policy's
//! regulator-free run at the same seeds (the hardening overhead),
//! `deadline_miss` counts **policy-blamed** misses — misses with no
//! regulator fallback, brownout cap, or ladder step anywhere before them
//! in the event log — plus kernel-log audit findings other than the
//! misses themselves, and `fault_miss` counts the excused misses. The
//! committed golden therefore enforces "regulator failures never turn
//! into policy bugs" and "no fallback ever rounds down or violates a cap"
//! mechanically on every regeneration.
//!
//! At rate 0 the regulator's plan is [`RegulatorPlan::ideal`] and the
//! brownout schedule is empty, so the run with a regulator attached must
//! be **byte-identical** to the regulator-free baseline — the ideal
//! regulator performs zero draws and zero extra stalls. The rate-0 column
//! normalizing to exactly 1.0 bitwise is the committed proof of the
//! zero-cost-ideal claim.

use std::time::Instant;

use rtdvs_audit::{audit_kernel_log, Rule};
use rtdvs_core::policy::PolicyKind;
use rtdvs_core::time::{Time, Work};
use rtdvs_kernel::{KernelEvent, RtKernel, UniformBody};
use rtdvs_platform::{PowerNowCpu, RegulatorPlan, UnreliableRegulator};
use rtdvs_taskgen::SplitMix64;

use crate::artifact::{BenchArtifact, BenchGrid, BenchPoint, BenchSeries};

/// The grid label that switches the artifact validator into per-policy
/// normalization mode (see [`BenchArtifact::validate`]).
pub const REGULATOR_LABEL: &str = "regulator-soak";

/// Spacing of the brownout decision slots, milliseconds: every slot
/// boundary flips a coin with the grid's adversity rate; heads imposes
/// the cap for that slot, tails lifts it.
const BROWNOUT_SLOT_MS: f64 = 100.0;

/// The operating point the brownout clamps to. Index 3 of the K6-2+'s
/// seven points keeps the relaxed set EDF-feasible under the cap's
/// frequency scaling, so a capped slot degrades energy, not guarantees.
const BROWNOUT_CAP_POINT: usize = 3;

/// The soaked task set, `(period_ms, wcet_ms)`: Table 2 with doubled
/// periods. The halved utilization (≈0.49 after the accounted
/// switch-overhead inflation) keeps the set admissible under *all six*
/// paper policies — including the RM admission tests — on the K6-2+
/// machine, so a fault-free run misses nothing and any policy-blamed
/// miss in the grid is a genuine driver bug.
const RELAXED_TABLE2: [(f64, f64); 3] = [(16.0, 3.0), (20.0, 3.0), (28.0, 1.0)];

/// Configuration for one regulator soak.
#[derive(Debug, Clone)]
pub struct RegulatorConfig {
    /// Policies to soak, in column order.
    pub policies: Vec<PolicyKind>,
    /// Adversity rates (x axis): per-attempt regulator failure/timeout
    /// probability, also the per-slot brownout probability. `0.0` means
    /// an ideal regulator and no brownouts.
    pub adversity_rates: Vec<f64>,
    /// Independent seed sets averaged per rate.
    pub sets_per_rate: usize,
    /// Simulated horizon per run.
    pub duration: Time,
    /// Base RNG seed every per-cell stream derives from.
    pub seed: u64,
}

/// The grid behind `BENCH_regulator.json` and the CI regulator-smoke
/// stage: adversity rates 0–50% across all six paper policies, three
/// seed sets per rate, on the K6-2+ prototype machine with accounted
/// switch overheads. Small enough to re-run on every push.
#[must_use]
pub fn regulator_smoke_config(seed: u64) -> RegulatorConfig {
    RegulatorConfig {
        policies: PolicyKind::paper_six().to_vec(),
        adversity_rates: vec![0.0, 0.05, 0.2, 0.5],
        sets_per_rate: 3,
        duration: Time::from_ms(600.0),
        seed,
    }
}

/// The regulator-failure plan injected at `rate`, seeded from the cell's
/// stream. Ignored transitions are the headline failure (rate as given);
/// handshake timeouts and late settles ride along at half the rate. At
/// rate 0 the builders install nothing, so the plan is exactly
/// [`RegulatorPlan::ideal`] and the regulator takes its zero-draw path.
#[must_use]
pub fn regulator_plan(seed: u64, rate: f64) -> RegulatorPlan {
    let stop = PowerNowCpu::k6_2_plus_550().stop_interval();
    RegulatorPlan::new(seed)
        .with_failures(rate)
        .with_timeouts(rate * 0.5, stop)
        .with_settle_jitter(rate * 0.5, stop)
}

/// One policy's tallies at one adversity rate.
#[derive(Debug, Clone, Copy, Default)]
struct RateCell {
    /// Energy with the unreliable regulator attached, summed over sets.
    energy: f64,
    /// Energy of the regulator-free run at the same seeds.
    baseline: f64,
    /// Misses with no excusing hardware event before them, plus non-miss
    /// audit findings: either is a driver bug.
    policy_blamed: u64,
    /// Misses preceded by a regulator fallback, brownout cap, or ladder
    /// step — the hardware's fault, not the policy's.
    excused: u64,
}

/// One kernel run's outcome.
struct CellRun {
    energy: f64,
    policy_blamed: u64,
    excused: u64,
}

/// Splits a finished kernel's misses into policy-blamed and excused, in
/// log order: once any regulator fallback, brownout cap change, ladder
/// step, or supervisor restore has been logged, the admission test's
/// premises are void and subsequent misses are the hardware's fault.
/// Non-miss audit findings are folded into the policy-blamed count —
/// an unsafe fallback or cap violation is a driver bug wherever it
/// appears.
fn blame(kernel: &RtKernel) -> (u64, u64) {
    let mut hardware_acted = false;
    let mut policy_blamed = 0u64;
    let mut excused = 0u64;
    for (_, event) in kernel.log() {
        match event {
            KernelEvent::RegulatorFallback { .. }
            | KernelEvent::BrownoutCapSet { .. }
            | KernelEvent::LadderStepped { .. }
            | KernelEvent::SupervisorRestored => hardware_acted = true,
            KernelEvent::DeadlineMiss { .. } => {
                if hardware_acted {
                    excused += 1;
                } else {
                    policy_blamed += 1;
                }
            }
            _ => {}
        }
    }
    let findings = audit_kernel_log(kernel.log())
        .iter()
        .filter(|v| v.rule != Rule::DeadlineMiss)
        .count() as u64;
    (policy_blamed + findings, excused)
}

/// Runs one kernel to `duration` on the K6-2+ machine. `regulator`
/// attaches the unreliable hardware (None is the baseline), and
/// `brownouts` imposes/lifts the cap at each scheduled slot boundary.
fn run_cell(
    kind: PolicyKind,
    duration: Time,
    body_seed: u64,
    regulator: Option<UnreliableRegulator>,
    brownouts: &[(Time, Option<usize>)],
) -> CellRun {
    let cpu = PowerNowCpu::k6_2_plus_550();
    let machine = cpu.machine().expect("prototype machine is valid");
    let mut bodies = SplitMix64::seed_from_u64(body_seed);
    let mut kernel =
        RtKernel::new(machine, kind).with_accounted_switch_overhead(cpu.switch_overhead());
    if let Some(reg) = regulator {
        kernel.attach_regulator(Box::new(reg));
    }
    for (period, wcet) in RELAXED_TABLE2 {
        kernel
            .spawn(
                Time::from_ms(period),
                Work::from_ms(wcet),
                Box::new(UniformBody::new(bodies.next_u64())),
            )
            .expect("the relaxed Table 2 set is admitted by every paper policy");
    }
    for &(at, cap) in brownouts {
        if kernel.now().as_ms() < at.as_ms() {
            kernel.run_for(at - kernel.now());
        }
        kernel.set_brownout_cap(cap);
    }
    if kernel.now().as_ms() < duration.as_ms() {
        kernel.run_for(duration - kernel.now());
    }
    let (policy_blamed, excused) = blame(&kernel);
    CellRun {
        energy: kernel.energy(),
        policy_blamed,
        excused,
    }
}

/// The brownout schedule for one cell: each slot boundary inside the
/// horizon fires with probability `rate`, imposing the cap for that slot
/// and lifting it at the next clean boundary. Empty at rate 0.
fn brownout_schedule(
    stream: &mut SplitMix64,
    rate: f64,
    duration: Time,
) -> Vec<(Time, Option<usize>)> {
    let mut schedule = Vec::new();
    let mut capped = false;
    let mut slot = 1u32;
    loop {
        let at = Time::from_ms(BROWNOUT_SLOT_MS * f64::from(slot));
        if at.as_ms() >= duration.as_ms() {
            return schedule;
        }
        let browned = stream.next_f64() < rate;
        if browned && !capped {
            schedule.push((at, Some(BROWNOUT_CAP_POINT)));
            capped = true;
        } else if !browned && capped {
            schedule.push((at, None));
            capped = false;
        }
        slot += 1;
    }
}

/// Runs the regulator soak and packs it into a `"regulator-soak"`
/// artifact.
///
/// Deterministic in `cfg` alone: each `(rate, set)` cell derives its body
/// seed, regulator seed, and brownout schedule from
/// `SplitMix64::seed_from_u64(cfg.seed).split(cell_id)` — the same
/// per-cell stream discipline as the chaos and mode-churn soaks — and
/// the schedule and regulator seed are shared across the cell's policies
/// so every column faces identical hardware. Only `wall_ms` varies
/// between runs.
///
/// # Panics
///
/// Panics if the grid is empty, a rate is outside `[0, 1]`, or the
/// relaxed Table 2 set is rejected by a policy (it is admissible by
/// construction, so a rejection is an admission-test bug).
#[must_use]
pub fn run_regulator(cfg: &RegulatorConfig) -> BenchArtifact {
    assert!(
        !cfg.adversity_rates.is_empty() && cfg.sets_per_rate > 0 && !cfg.policies.is_empty(),
        "regulator grid must be non-empty"
    );
    assert!(
        cfg.adversity_rates.iter().all(|r| (0.0..=1.0).contains(r)),
        "adversity rates are probabilities"
    );
    let start = Instant::now();
    let cpu = PowerNowCpu::k6_2_plus_550();
    let n_pol = cfg.policies.len();
    let mut cells = vec![RateCell::default(); cfg.adversity_rates.len() * n_pol];

    for (ri, &rate) in cfg.adversity_rates.iter().enumerate() {
        for s in 0..cfg.sets_per_rate {
            let cell_id = (ri * cfg.sets_per_rate + s) as u64;
            let mut stream = SplitMix64::seed_from_u64(cfg.seed).split(cell_id);
            let body_seed = stream.next_u64();
            let reg_seed = stream.next_u64();
            let brownouts = brownout_schedule(&mut stream, rate, cfg.duration);
            for (pi, kind) in cfg.policies.iter().enumerate() {
                let reg = UnreliableRegulator::new(cpu.clone(), regulator_plan(reg_seed, rate));
                let hard = run_cell(*kind, cfg.duration, body_seed, Some(reg), &brownouts);
                let clean = run_cell(*kind, cfg.duration, body_seed, None, &[]);
                let cell = &mut cells[ri * n_pol + pi];
                cell.energy += hard.energy;
                cell.baseline += clean.energy;
                cell.policy_blamed += hard.policy_blamed + clean.policy_blamed + clean.excused;
                cell.excused += hard.excused;
            }
        }
    }

    let series = cfg
        .policies
        .iter()
        .enumerate()
        .map(|(pi, kind)| BenchSeries {
            policy: kind.name().to_owned(),
            n_tasks: RELAXED_TABLE2.len(),
            points: cfg
                .adversity_rates
                .iter()
                .enumerate()
                .map(|(ri, &rate)| {
                    let cell = &cells[ri * n_pol + pi];
                    BenchPoint {
                        u: rate,
                        energy_norm: cell.energy / cell.baseline,
                        deadline_miss: cell.policy_blamed,
                        fault_miss: cell.excused,
                    }
                })
                .collect(),
        })
        .collect();

    BenchArtifact {
        seed: cfg.seed,
        threads: 1,
        grid: BenchGrid {
            label: REGULATOR_LABEL.to_owned(),
            n_tasks: vec![RELAXED_TABLE2.len()],
            utilizations: cfg.adversity_rates.clone(),
            sets_per_point: cfg.sets_per_rate,
            duration_ms: cfg.duration.as_ms(),
            policies: cfg.policies.iter().map(|k| k.name().to_owned()).collect(),
        },
        series,
        wall_ms: start.elapsed().as_millis() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RegulatorConfig {
        let mut cfg = regulator_smoke_config(0x4E60);
        cfg.adversity_rates = vec![0.0, 0.5];
        cfg.sets_per_rate = 2;
        cfg.duration = Time::from_ms(300.0);
        cfg
    }

    #[test]
    fn regulator_artifact_is_deterministic() {
        let cfg = tiny();
        let a = run_regulator(&cfg);
        let b = run_regulator(&cfg);
        assert_eq!(a.canonical_json(), b.canonical_json());
    }

    #[test]
    fn rate_zero_column_proves_the_ideal_regulator_is_free() {
        // At rate 0 the plan is RegulatorPlan::ideal() and the brownout
        // schedule is empty, so the run with a regulator attached must be
        // byte-identical to the regulator-free baseline: zero draws, zero
        // extra stalls, normalization exactly 1.
        let artifact = run_regulator(&tiny());
        for series in &artifact.series {
            let p0 = &series.points[0];
            assert_eq!(p0.u, 0.0);
            assert_eq!(
                p0.energy_norm.to_bits(),
                1.0_f64.to_bits(),
                "{}",
                series.policy
            );
            assert_eq!(p0.deadline_miss, 0, "{}", series.policy);
            assert_eq!(p0.fault_miss, 0, "{}", series.policy);
        }
    }

    #[test]
    fn smoke_grid_blames_no_policy_and_audits_clean() {
        // The PR's acceptance criterion: across the whole smoke grid, no
        // miss is ever policy-blamed — the bounded-retry driver, the
        // round-up fallback, and the degradation ladder absorb every
        // regulator failure and brownout — and every event log replays
        // clean through the auditor (no unsafe fallback, no cap
        // violation, no lifecycle inconsistency).
        let artifact = run_regulator(&regulator_smoke_config(0x5eed));
        let problems = artifact.validate();
        assert!(problems.is_empty(), "{problems:?}");
        for series in &artifact.series {
            for p in &series.points {
                assert_eq!(
                    p.deadline_miss, 0,
                    "{} policy-blamed at adversity rate {}",
                    series.policy, p.u
                );
            }
        }
    }

    #[test]
    fn adversity_costs_energy_through_hardening() {
        // Retry stalls, forced writes, and capped slots can only add
        // energy relative to the clean run; at the highest rate some
        // policy must pay for the hardening.
        let artifact = run_regulator(&tiny());
        let worst = artifact
            .series
            .iter()
            .map(|s| s.points.last().expect("non-empty").energy_norm)
            .fold(f64::MIN, f64::max);
        assert!(worst > 1.0, "hardening never cost anything: {worst}");
    }

    #[test]
    fn brownout_schedule_alternates_and_respects_rate_zero() {
        let mut stream = SplitMix64::seed_from_u64(9).split(0);
        assert!(brownout_schedule(&mut stream, 0.0, Time::from_ms(600.0)).is_empty());
        let mut stream = SplitMix64::seed_from_u64(9).split(0);
        let schedule = brownout_schedule(&mut stream, 0.7, Time::from_ms(600.0));
        assert!(!schedule.is_empty(), "rate 0.7 never browned out");
        // Strictly alternating impose/lift, starting with an imposition.
        for (i, (_, cap)) in schedule.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(*cap, Some(BROWNOUT_CAP_POINT));
            } else {
                assert_eq!(*cap, None);
            }
        }
    }
}
