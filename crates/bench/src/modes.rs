//! Mode-churn soak: transactional mode-change sweeps with lifecycle
//! auditing.
//!
//! Where the chaos soak injects *hardware* faults, the mode-churn soak
//! stresses the kernel's *lifecycle* machinery: it drives every policy
//! over the worked example of Table 2 while submitting transactional
//! mode changes ([`rtdvs_kernel::ModeChange`]) at increasing rates — each
//! churn toggles the highest-rate task between its nominal period and a
//! relaxed one, so the set stays admissible under all six policies at
//! every instant and any deadline miss is a transaction bug, not an
//! overload artifact. Every churned run's event log is then replayed
//! through [`rtdvs_audit::audit_kernel_log`], which checks that the mode
//! epoch stepped monotonically and that no invocation was orphaned,
//! duplicated, or left unclosed across the commits.
//!
//! The output reuses the `rtdvs-bench/v1` artifact with the axes
//! reinterpreted (grid label `"mode-churn"`): `u` is the per-slot churn
//! probability, `energy_norm` is energy relative to the same policy's
//! churn-free run at the same seeds (the transaction overhead),
//! `deadline_miss` counts deadline misses (expected 0 — the safe-point
//! rule forbids a commit from invalidating in-flight work), and
//! `fault_miss` carries the kernel-log audit finding count other than the
//! misses themselves (also expected 0). Committing the golden therefore
//! enforces both "mode churn never costs a deadline" and "the lifecycle
//! log stays replay-clean" mechanically on every regeneration.
//!
//! At churn rate 0 no transaction is ever submitted, so the churned run
//! IS the baseline and the normalization is exactly 1 — the same
//! bit-exactness anchor the chaos soak uses.

use std::time::Instant;

use rtdvs_audit::{audit_kernel_log, Rule};
use rtdvs_core::machine::Machine;
use rtdvs_core::policy::PolicyKind;
use rtdvs_core::time::{Time, Work};
use rtdvs_kernel::{KernelError, ModeChange, RtKernel, UniformBody};
use rtdvs_taskgen::SplitMix64;

use crate::artifact::{BenchArtifact, BenchGrid, BenchPoint, BenchSeries};

/// The grid label that switches the artifact validator into per-policy
/// normalization mode (see [`BenchArtifact::validate`]).
pub const MODES_LABEL: &str = "mode-churn";

/// Spacing of the churn decision slots, milliseconds: every slot
/// boundary flips a coin with the grid's churn probability.
const CHURN_SLOT_MS: f64 = 20.0;

/// The Table 2 set the soak runs: `(period_ms, wcet_ms)`.
const TABLE2: [(f64, f64); 3] = [(8.0, 3.0), (10.0, 3.0), (14.0, 1.0)];

/// The relaxed period each churn toggles the first task to (and back).
/// Both 8 ms and 12 ms keep the set admissible under every paper policy
/// (worst-case utilization 0.746 and 0.621 against the RM bound 0.780),
/// so a miss in the grid is a transaction bug by construction.
const RELAXED_PERIOD_MS: f64 = 12.0;

/// Configuration for one mode-churn soak.
#[derive(Debug, Clone)]
pub struct ModesConfig {
    /// Machine to simulate.
    pub machine: Machine,
    /// Policies to soak, in column order.
    pub policies: Vec<PolicyKind>,
    /// Per-slot churn probabilities (x axis). `0.0` means no transaction
    /// is ever submitted.
    pub churn_rates: Vec<f64>,
    /// Independent seed sets averaged per rate.
    pub sets_per_rate: usize,
    /// Simulated horizon per run.
    pub duration: Time,
    /// Base RNG seed every per-cell stream derives from.
    pub seed: u64,
}

/// The grid behind `BENCH_modes.json` and the CI mode-churn stage: churn
/// probabilities 0–100% per 20 ms slot across all six paper policies,
/// three seed sets per rate, on machine 0. Small enough to re-run on
/// every push.
#[must_use]
pub fn modes_smoke_config(seed: u64) -> ModesConfig {
    ModesConfig {
        machine: Machine::machine0(),
        policies: PolicyKind::paper_six().to_vec(),
        churn_rates: vec![0.0, 0.2, 0.5, 1.0],
        sets_per_rate: 3,
        duration: Time::from_ms(600.0),
        seed,
    }
}

/// One policy's tallies at one churn rate.
#[derive(Debug, Clone, Copy, Default)]
struct RateCell {
    /// Energy with churn applied, summed over the rate's seed sets.
    energy: f64,
    /// Energy of the churn-free run at the same seeds.
    baseline: f64,
    /// Deadline misses across the churned runs.
    misses: u64,
    /// Kernel-log audit findings other than the misses themselves.
    audit_findings: u64,
}

/// One churned (or churn-free) kernel run's outcome.
struct CellRun {
    energy: f64,
    misses: u64,
    audit_findings: u64,
}

/// Runs one kernel to `duration`, submitting a period-toggle transaction
/// at each scheduled churn instant. `schedule` is empty for the baseline.
fn run_cell(
    kind: PolicyKind,
    machine: &Machine,
    duration: Time,
    body_seed: u64,
    schedule: &[Time],
) -> CellRun {
    let mut bodies = SplitMix64::seed_from_u64(body_seed);
    let mut kernel = RtKernel::new(machine.clone(), kind);
    let mut handles = Vec::new();
    for (period, wcet) in TABLE2 {
        let h = kernel
            .spawn(
                Time::from_ms(period),
                Work::from_ms(wcet),
                Box::new(UniformBody::new(bodies.next_u64())),
            )
            .expect("Table 2 is admitted by every paper policy");
        handles.push(h);
    }
    let (nominal, wcet) = (Time::from_ms(TABLE2[0].0), Work::from_ms(TABLE2[0].1));
    let mut relaxed = false;
    for &at in schedule {
        if kernel.now().as_ms() < at.as_ms() {
            kernel.run_for(at - kernel.now());
        }
        let target = if relaxed {
            nominal
        } else {
            Time::from_ms(RELAXED_PERIOD_MS)
        };
        match kernel.submit_mode_change(ModeChange::new().reparam(handles[0], target, wcet)) {
            Ok(_) => relaxed = !relaxed,
            // A transaction staged at the previous slot and not yet at its
            // safe point keeps the builder busy; skip this slot's toggle.
            Err(KernelError::ModeChangeBusy) => {}
            Err(e) => panic!("churn transaction rejected: {e}"),
        }
    }
    if kernel.now().as_ms() < duration.as_ms() {
        kernel.run_for(duration - kernel.now());
    }
    let misses = kernel.misses().count() as u64;
    let audit_findings = audit_kernel_log(kernel.log())
        .iter()
        .filter(|v| v.rule != Rule::DeadlineMiss)
        .count() as u64;
    CellRun {
        energy: kernel.energy(),
        misses,
        audit_findings,
    }
}

/// The churn instants for one cell: each slot boundary inside the horizon
/// fires with probability `rate`, drawn from the cell's own stream.
fn churn_schedule(stream: &mut SplitMix64, rate: f64, duration: Time) -> Vec<Time> {
    let mut schedule = Vec::new();
    let mut slot = 1u32;
    loop {
        let at = Time::from_ms(CHURN_SLOT_MS * f64::from(slot));
        if at.as_ms() >= duration.as_ms() {
            return schedule;
        }
        if stream.next_f64() < rate {
            schedule.push(at);
        }
        slot += 1;
    }
}

/// Runs the mode-churn soak and packs it into a `"mode-churn"` artifact.
///
/// Deterministic in `cfg` alone: each `(rate, set)` cell derives its body
/// seed and churn schedule from
/// `SplitMix64::seed_from_u64(cfg.seed).split(cell_id)` — the same
/// per-cell stream discipline as the chaos soak — and the schedule is
/// shared across the cell's policies so every column sees identical
/// churn. Only `wall_ms` varies between runs.
///
/// # Panics
///
/// Panics if the grid is empty, a churn rate is outside `[0, 1]`, or a
/// churn transaction is rejected outright (the toggle set is admissible
/// by construction, so a rejection is a transaction-machinery bug).
#[must_use]
pub fn run_modes(cfg: &ModesConfig) -> BenchArtifact {
    assert!(
        !cfg.churn_rates.is_empty() && cfg.sets_per_rate > 0 && !cfg.policies.is_empty(),
        "mode-churn grid must be non-empty"
    );
    assert!(
        cfg.churn_rates.iter().all(|r| (0.0..=1.0).contains(r)),
        "churn rates are probabilities"
    );
    let start = Instant::now();
    let n_pol = cfg.policies.len();
    let mut cells = vec![RateCell::default(); cfg.churn_rates.len() * n_pol];

    for (ri, &rate) in cfg.churn_rates.iter().enumerate() {
        for s in 0..cfg.sets_per_rate {
            let cell_id = (ri * cfg.sets_per_rate + s) as u64;
            let mut stream = SplitMix64::seed_from_u64(cfg.seed).split(cell_id);
            let body_seed = stream.next_u64();
            let schedule = churn_schedule(&mut stream, rate, cfg.duration);
            for (pi, kind) in cfg.policies.iter().enumerate() {
                let churned = run_cell(*kind, &cfg.machine, cfg.duration, body_seed, &schedule);
                let clean = run_cell(*kind, &cfg.machine, cfg.duration, body_seed, &[]);
                let cell = &mut cells[ri * n_pol + pi];
                cell.energy += churned.energy;
                cell.baseline += clean.energy;
                cell.misses += churned.misses + clean.misses;
                cell.audit_findings += churned.audit_findings + clean.audit_findings;
            }
        }
    }

    let series = cfg
        .policies
        .iter()
        .enumerate()
        .map(|(pi, kind)| BenchSeries {
            policy: kind.name().to_owned(),
            n_tasks: TABLE2.len(),
            points: cfg
                .churn_rates
                .iter()
                .enumerate()
                .map(|(ri, &rate)| {
                    let cell = &cells[ri * n_pol + pi];
                    BenchPoint {
                        u: rate,
                        energy_norm: cell.energy / cell.baseline,
                        deadline_miss: cell.misses,
                        fault_miss: cell.audit_findings,
                    }
                })
                .collect(),
        })
        .collect();

    BenchArtifact {
        seed: cfg.seed,
        threads: 1,
        grid: BenchGrid {
            label: MODES_LABEL.to_owned(),
            n_tasks: vec![TABLE2.len()],
            utilizations: cfg.churn_rates.clone(),
            sets_per_point: cfg.sets_per_rate,
            duration_ms: cfg.duration.as_ms(),
            policies: cfg.policies.iter().map(|k| k.name().to_owned()).collect(),
        },
        series,
        wall_ms: start.elapsed().as_millis() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ModesConfig {
        let mut cfg = modes_smoke_config(0x30DE);
        cfg.churn_rates = vec![0.0, 1.0];
        cfg.sets_per_rate = 2;
        cfg.duration = Time::from_ms(300.0);
        cfg
    }

    #[test]
    fn modes_artifact_is_deterministic() {
        let cfg = tiny();
        let a = run_modes(&cfg);
        let b = run_modes(&cfg);
        assert_eq!(a.canonical_json(), b.canonical_json());
    }

    #[test]
    fn rate_zero_column_is_the_churn_free_baseline() {
        // At rate 0 no transaction is ever submitted, so the churned run
        // IS the baseline: the normalization is exactly 1 and nothing can
        // miss (Table 2 is admitted by every paper policy).
        let artifact = run_modes(&tiny());
        for series in &artifact.series {
            let p0 = &series.points[0];
            assert_eq!(p0.u, 0.0);
            assert_eq!(
                p0.energy_norm.to_bits(),
                1.0_f64.to_bits(),
                "{}",
                series.policy
            );
            assert_eq!(p0.deadline_miss, 0, "{}", series.policy);
            assert_eq!(p0.fault_miss, 0, "{}", series.policy);
        }
    }

    #[test]
    fn smoke_grid_misses_nothing_and_audits_clean() {
        // The PR's acceptance criterion: across the whole smoke grid, no
        // commit ever costs a deadline, and every churned run's event log
        // replays clean through the lifecycle auditor (monotonic epochs,
        // no orphaned or out-of-sequence invocations).
        let artifact = run_modes(&modes_smoke_config(0x5eed));
        let problems = artifact.validate();
        assert!(problems.is_empty(), "{problems:?}");
        for series in &artifact.series {
            for p in &series.points {
                assert_eq!(
                    p.deadline_miss, 0,
                    "{} missed a deadline at churn rate {}",
                    series.policy, p.u
                );
                assert_eq!(
                    p.fault_miss, 0,
                    "{} has lifecycle audit findings at churn rate {}",
                    series.policy, p.u
                );
            }
        }
    }

    #[test]
    fn churn_actually_commits_transactions() {
        // The soak is only meaningful if mode changes really commit: at
        // rate 1 the first task's epoch must have advanced many times.
        let mut stream = SplitMix64::seed_from_u64(7).split(0);
        let body_seed = stream.next_u64();
        let schedule = churn_schedule(&mut stream, 1.0, Time::from_ms(300.0));
        assert!(schedule.len() >= 10, "schedule too sparse: {schedule:?}");
        let mut kernel = RtKernel::new(Machine::machine0(), PolicyKind::CcEdf);
        let mut bodies = SplitMix64::seed_from_u64(body_seed);
        let mut handles = Vec::new();
        for (period, wcet) in TABLE2 {
            handles.push(
                kernel
                    .spawn(
                        Time::from_ms(period),
                        Work::from_ms(wcet),
                        Box::new(UniformBody::new(bodies.next_u64())),
                    )
                    .unwrap(),
            );
        }
        let mut relaxed = false;
        for &at in &schedule {
            if kernel.now().as_ms() < at.as_ms() {
                kernel.run_for(at - kernel.now());
            }
            let target = if relaxed {
                Time::from_ms(TABLE2[0].0)
            } else {
                Time::from_ms(RELAXED_PERIOD_MS)
            };
            if kernel
                .submit_mode_change(ModeChange::new().reparam(
                    handles[0],
                    target,
                    Work::from_ms(TABLE2[0].1),
                ))
                .is_ok()
            {
                relaxed = !relaxed;
            }
        }
        kernel.run_for(Time::from_ms(50.0));
        assert!(
            kernel.mode_epoch() >= schedule.len() as u64 / 2,
            "only {} commits for {} churn slots",
            kernel.mode_epoch(),
            schedule.len()
        );
        assert!(audit_kernel_log(kernel.log()).is_empty());
    }
}
