//! Chaos-soak harness: fault-rate sweeps with blame accounting.
//!
//! Where the utilization sweeps ask "how much energy does each policy
//! save?", the chaos soak asks "who breaks first, and whose fault is
//! it?". It drives every policy over the worked example of Table 2 while
//! the deterministic fault layer ([`rtdvs_sim::FaultPlan`]) injects WCET
//! overruns, stuck operating-point transitions, transition-latency
//! jitter, and release jitter at increasing rates. Every run is then fed
//! to the audit layer's miss classifier
//! ([`rtdvs_audit::classify_misses`]): misses an injected fault can
//! explain are tallied separately from misses that would indict the
//! policy itself. A healthy engine shows **zero** policy-bug misses at
//! every fault rate — the containment path (escalate to the top
//! frequency, quarantine the offender) may burn energy, but it must
//! never let an injected fault masquerade as a scheduler bug.
//!
//! The output reuses the `rtdvs-bench/v1` artifact with the axes
//! reinterpreted (grid label `"chaos-soak"`): `u` is the injected fault
//! rate, `energy_norm` is energy relative to the same policy's
//! fault-free run at the same seeds, `deadline_miss` counts only
//! policy-blamed misses, and `fault_miss` counts fault-induced ones.
//!
//! The workload is fixed to [`table2_task_set`] deliberately: all six
//! paper policies admit it (Table 4), so a fault-free run misses nothing
//! and *any* policy-blamed miss in the grid is a genuine bug, not an
//! artifact of an inadmissible set.

use std::time::Instant;

use rtdvs_audit::{fault_induced_misses, policy_bug_misses};
use rtdvs_core::example::table2_task_set;
use rtdvs_core::machine::Machine;
use rtdvs_core::policy::PolicyKind;
use rtdvs_core::time::Time;
use rtdvs_sim::{simulate, ExecModel, FaultPlan, SimConfig};
use rtdvs_taskgen::SplitMix64;

use crate::artifact::{BenchArtifact, BenchGrid, BenchPoint, BenchSeries};

/// The grid label that switches the artifact validator into chaos-axis
/// mode (see [`BenchArtifact::validate`]).
pub const CHAOS_LABEL: &str = "chaos-soak";

/// Configuration for one chaos soak.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Machine to simulate.
    pub machine: Machine,
    /// Policies to soak, in column order.
    pub policies: Vec<PolicyKind>,
    /// Injected fault rates (x axis). `0.0` means [`FaultPlan::none`].
    pub fault_rates: Vec<f64>,
    /// Independent `(sim seed, fault seed)` pairs averaged per rate.
    pub sets_per_rate: usize,
    /// Simulated horizon per run.
    pub duration: Time,
    /// Actual-computation model (faults inject on top of it).
    pub exec: ExecModel,
    /// Base RNG seed every per-cell stream derives from.
    pub seed: u64,
}

/// The grid behind `BENCH_faults.json` and the CI chaos-smoke stage:
/// fault rates 0–20% across all six paper policies, three seed pairs per
/// rate, uniform actual computation on machine 0. Small enough to re-run
/// on every push.
#[must_use]
pub fn chaos_smoke_config(seed: u64) -> ChaosConfig {
    ChaosConfig {
        machine: Machine::machine0(),
        policies: PolicyKind::paper_six().to_vec(),
        fault_rates: vec![0.0, 0.05, 0.1, 0.2],
        sets_per_rate: 3,
        duration: Time::from_ms(600.0),
        exec: ExecModel::uniform(),
        seed,
    }
}

/// The fault plan injected at `rate`, seeded from the cell's stream.
///
/// Overruns are the headline fault (rate as given, 1.5× the declared
/// worst case); the hardware-side faults — stuck transitions, transition
/// jitter, delayed releases — ride along at half the rate. At rate 0 the
/// builders install nothing, so the plan is exactly [`FaultPlan::none`]
/// and the engine takes its zero-cost path.
#[must_use]
pub fn chaos_plan(fault_seed: u64, rate: f64) -> FaultPlan {
    FaultPlan::new(fault_seed)
        .with_overruns(rate, 1.5)
        .with_stuck_transitions(rate * 0.5)
        .with_transition_jitter(rate * 0.5, Time::from_ms(0.1))
        .with_release_jitter(rate * 0.5, 0.25)
}

/// One policy's tallies at one fault rate.
#[derive(Debug, Clone, Copy, Default)]
struct RateCell {
    /// Energy with faults injected, summed over the rate's seed pairs.
    energy: f64,
    /// Energy of the fault-free run at the same seeds.
    baseline: f64,
    /// Misses the classifier blames on the policy.
    policy_bug: u64,
    /// Misses the classifier attributes to injected faults.
    fault_induced: u64,
}

/// Runs the chaos soak and packs it into a `"chaos-soak"` artifact.
///
/// Deterministic in `cfg` alone: each `(rate, set)` cell derives its
/// `(sim seed, fault seed)` pair from
/// `SplitMix64::seed_from_u64(cfg.seed).split(cell_id)` — the same
/// per-cell stream discipline as the sharded sweep runner — and the grid
/// is folded in cell-id order. Only `wall_ms` varies between runs.
///
/// # Panics
///
/// Panics if the grid is empty or a fault rate is outside `[0, 1]`.
#[must_use]
pub fn run_chaos(cfg: &ChaosConfig) -> BenchArtifact {
    assert!(
        !cfg.fault_rates.is_empty() && cfg.sets_per_rate > 0 && !cfg.policies.is_empty(),
        "chaos grid must be non-empty"
    );
    assert!(
        cfg.fault_rates.iter().all(|r| (0.0..=1.0).contains(r)),
        "fault rates are probabilities"
    );
    let start = Instant::now();
    let tasks = table2_task_set();
    let n_pol = cfg.policies.len();
    let mut cells = vec![RateCell::default(); cfg.fault_rates.len() * n_pol];

    for (ri, &rate) in cfg.fault_rates.iter().enumerate() {
        for s in 0..cfg.sets_per_rate {
            let cell_id = (ri * cfg.sets_per_rate + s) as u64;
            let mut stream = SplitMix64::seed_from_u64(cfg.seed).split(cell_id);
            let sim_seed = stream.next_u64();
            let fault_seed = stream.next_u64();
            for (pi, kind) in cfg.policies.iter().enumerate() {
                let chaos_cfg = SimConfig::new(cfg.duration)
                    .with_exec(cfg.exec.clone())
                    .with_seed(sim_seed)
                    .with_faults(chaos_plan(fault_seed, rate));
                let clean_cfg = SimConfig::new(cfg.duration)
                    .with_exec(cfg.exec.clone())
                    .with_seed(sim_seed);
                let report = simulate(&tasks, &cfg.machine, *kind, &chaos_cfg);
                let clean = simulate(&tasks, &cfg.machine, *kind, &clean_cfg);
                let cell = &mut cells[ri * n_pol + pi];
                cell.energy += report.energy();
                cell.baseline += clean.energy();
                cell.policy_bug += policy_bug_misses(&report);
                cell.fault_induced += fault_induced_misses(&report);
            }
        }
    }

    let series = cfg
        .policies
        .iter()
        .enumerate()
        .map(|(pi, kind)| BenchSeries {
            policy: kind.name().to_owned(),
            n_tasks: tasks.len(),
            points: cfg
                .fault_rates
                .iter()
                .enumerate()
                .map(|(ri, &rate)| {
                    let cell = &cells[ri * n_pol + pi];
                    BenchPoint {
                        u: rate,
                        energy_norm: cell.energy / cell.baseline,
                        deadline_miss: cell.policy_bug,
                        fault_miss: cell.fault_induced,
                    }
                })
                .collect(),
        })
        .collect();

    BenchArtifact {
        seed: cfg.seed,
        threads: 1,
        grid: BenchGrid {
            label: CHAOS_LABEL.to_owned(),
            n_tasks: vec![tasks.len()],
            utilizations: cfg.fault_rates.clone(),
            sets_per_point: cfg.sets_per_rate,
            duration_ms: cfg.duration.as_ms(),
            policies: cfg.policies.iter().map(|k| k.name().to_owned()).collect(),
        },
        series,
        wall_ms: start.elapsed().as_millis() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ChaosConfig {
        let mut cfg = chaos_smoke_config(0x50AC);
        cfg.fault_rates = vec![0.0, 0.2];
        cfg.sets_per_rate = 2;
        cfg.duration = Time::from_ms(300.0);
        cfg
    }

    #[test]
    fn chaos_artifact_is_deterministic() {
        let cfg = tiny();
        let a = run_chaos(&cfg);
        let b = run_chaos(&cfg);
        assert_eq!(a.canonical_json(), b.canonical_json());
    }

    #[test]
    fn rate_zero_column_is_the_fault_free_baseline() {
        // At rate 0 the plan is FaultPlan::none(), so the chaos run IS
        // the baseline: the normalization is exactly 1 and nothing can
        // miss (Table 2 is admitted by every paper policy).
        let artifact = run_chaos(&tiny());
        for series in &artifact.series {
            let p0 = &series.points[0];
            assert_eq!(p0.u, 0.0);
            assert_eq!(
                p0.energy_norm.to_bits(),
                1.0_f64.to_bits(),
                "{}",
                series.policy
            );
            assert_eq!(p0.deadline_miss, 0, "{}", series.policy);
            assert_eq!(p0.fault_miss, 0, "{}", series.policy);
        }
    }

    #[test]
    fn smoke_grid_has_zero_policy_bug_misses_and_validates() {
        // The PR's acceptance criterion: across the whole smoke grid, no
        // miss is ever blamed on a policy — containment and the blame
        // classifier absorb every injected fault.
        let artifact = run_chaos(&chaos_smoke_config(0x5eed));
        let problems = artifact.validate();
        assert!(problems.is_empty(), "{problems:?}");
        let mut injected_misses = 0;
        for series in &artifact.series {
            for p in &series.points {
                assert_eq!(
                    p.deadline_miss, 0,
                    "{} has a policy-blamed miss at rate {}",
                    series.policy, p.u
                );
                injected_misses += p.fault_miss;
            }
        }
        // The soak is only meaningful if the faults actually bite.
        assert!(injected_misses > 0, "no fault ever caused a miss");
    }

    #[test]
    fn faults_cost_energy_through_containment() {
        // Escalating to the top frequency on containment can only add
        // energy; at the highest rate some policy must pay for it.
        let artifact = run_chaos(&tiny());
        let worst = artifact
            .series
            .iter()
            .map(|s| s.points.last().expect("non-empty").energy_norm)
            .fold(f64::MIN, f64::max);
        assert!(worst > 1.0, "containment never cost anything: {worst}");
    }
}
