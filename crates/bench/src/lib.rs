//! # rtdvs-bench
//!
//! Experiment harness regenerating every table and figure of the RT-DVS
//! paper's evaluation (§3.2 and §4.3). The `experiments` binary drives the
//! functions here; integration tests reuse them with smaller sample counts
//! to assert the paper's qualitative results (orderings, crossovers,
//! bounds).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod campaign;
pub mod chaos;
pub mod chart;
pub mod clock;
pub mod figures;
pub mod microbench;
pub mod modes;
pub mod regulator;
pub mod runner;
pub mod stats;
pub mod sweep;
pub mod taskfile;
pub mod tenants;
pub mod throughput;

pub use artifact::{compare, BenchArtifact, BenchGrid, BenchPoint, BenchSeries};
pub use campaign::{
    campaign_smoke_config, cell_findings, compare_campaign, known_violating_campaign, materialize,
    policy_by_name, replay_repro, run_campaign, shrink_plan, CampaignArtifact, CampaignCell,
    CampaignConfig, CampaignSchedules, ChaosPlan, ChurnDim, ClockDim, FaultDim, FloodDim, KillDim,
    RegulatorDim, ReproArtifact, ReproViolation, Window,
};
pub use chaos::{chaos_smoke_config, run_chaos, ChaosConfig};
pub use chart::render_normalized_chart;
pub use clock::{clock_smoke_config, run_clock, ClockConfig};
pub use figures::*;
pub use modes::{modes_smoke_config, run_modes, ModesConfig};
pub use regulator::{regulator_smoke_config, run_regulator, RegulatorConfig};
pub use runner::{run_sweep_threads, RunnerStats, SweepRun};
pub use stats::{welch_t, Summary};
pub use sweep::{run_sweep, Sweep, SweepConfig, SweepRow};
pub use tenants::{
    compare_tenants, run_tenants, tenants_smoke_config, TenantOutcome, TenantSpec, TenantsArtifact,
    TenantsConfig,
};
pub use throughput::{
    compare_throughput, floor_violations, pin_table2_traces, run_throughput,
    throughput_smoke_config, PolicyThroughput, ThroughputArtifact, ThroughputConfig,
};
