//! Regenerates every table and figure of the RT-DVS paper.
//!
//! ```text
//! experiments [all|table1|table4|traces|fig9|fig10|fig11|fig12|fig13|fig16|fig17|ablations]
//!             [--quick] [--out DIR]
//! ```
//!
//! `--quick` runs reduced sample counts; `--out DIR` additionally writes
//! CSV files (default: print to stdout only).

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use rtdvs_bench::{
    ablation_rm_test, ablation_switch_overhead, example_traces, extension_tradeoff, fig10, fig11,
    fig12, fig13, fig16, fig17, fig9, render_normalized_chart, table1, table4, Scale,
};

struct Args {
    what: Vec<String>,
    scale: Scale,
    out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut what = Vec::new();
    let mut scale = Scale::full();
    let mut out = None;
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--quick" => scale = Scale::quick(),
            "--out" => {
                let dir = argv.next().ok_or("--out needs a directory")?;
                out = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                return Err("usage: experiments [TARGET...] [--quick] [--out DIR]".to_owned())
            }
            other if !other.starts_with('-') => what.push(other.to_owned()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if what.is_empty() {
        what.push("all".to_owned());
    }
    Ok(Args { what, scale, out })
}

fn write_out(out: &Option<PathBuf>, name: &str, content: &str) {
    if let Some(dir) = out {
        if let Err(e) = fs::create_dir_all(dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(name);
        if let Err(e) = fs::write(&path, content) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        } else {
            println!("  wrote {}", path.display());
        }
    }
}

fn run_table1(out: &Option<PathBuf>) {
    println!("== Table 1: HP N3350 subsystem power ==");
    let mut csv = String::from("screen,disk,cpu,watts\n");
    for (screen, disk, cpu, watts) in table1() {
        println!("  screen {screen:<4} disk {disk:<9} cpu {cpu:<9} -> {watts:5.1} W");
        csv.push_str(&format!("{screen},{disk},{cpu},{watts:.1}\n"));
    }
    write_out(out, "table1.csv", &csv);
}

fn run_table4(out: &Option<PathBuf>) {
    println!("== Table 4: normalized energy on the worked example ==");
    let mut csv = String::from("policy,normalized_energy,paper\n");
    let paper = rtdvs_core::example::table4_expected();
    for ((name, got), (_, want)) in table4().into_iter().zip(paper) {
        println!("  {name:<10} {got:5.3}   (paper: {want:4.2})");
        csv.push_str(&format!("{name},{got:.4},{want}\n"));
    }
    write_out(out, "table4.csv", &csv);
}

fn run_traces(out: &Option<PathBuf>) {
    println!("== Worked-example traces (Figs. 2, 3, 5, 7) ==");
    for (label, policy, chart) in example_traces() {
        println!("-- {label} ({policy}) --\n{chart}");
        write_out(out, &format!("{label}.txt"), &chart);
    }
}

fn run_fig9(scale: Scale, out: &Option<PathBuf>) {
    println!("== Fig. 9: energy vs utilization, 5/10/15 tasks ==");
    for (n, sweep) in fig9(scale) {
        println!("-- {n} tasks (normalized energies) --");
        println!("{}", sweep.render_normalized());
        println!("{}", render_normalized_chart(&sweep));
        write_out(out, &format!("fig9_{n}tasks.csv"), &sweep.to_csv());
    }
}

fn run_fig10(scale: Scale, out: &Option<PathBuf>) {
    println!("== Fig. 10: idle level 0.01 / 0.1 / 1.0 (8 tasks) ==");
    for (idle, sweep) in fig10(scale) {
        println!("-- idle level {idle} --");
        println!("{}", sweep.render_normalized());
        println!("{}", render_normalized_chart(&sweep));
        write_out(
            out,
            &format!("fig10_idle{idle}.csv"),
            &sweep.to_normalized_csv(),
        );
    }
}

fn run_fig11(scale: Scale, out: &Option<PathBuf>) {
    println!("== Fig. 11: machines 0 / 1 / 2 (8 tasks) ==");
    for (i, (machine, sweep)) in fig11(scale).into_iter().enumerate() {
        println!("-- {machine} --");
        println!("{}", sweep.render_normalized());
        println!("{}", render_normalized_chart(&sweep));
        write_out(
            out,
            &format!("fig11_machine{i}.csv"),
            &sweep.to_normalized_csv(),
        );
    }
}

fn run_fig12(scale: Scale, out: &Option<PathBuf>) {
    println!("== Fig. 12: c = 0.9 / 0.7 / 0.5 (8 tasks) ==");
    for (c, sweep) in fig12(scale) {
        println!("-- c = {c} --");
        println!("{}", sweep.render_normalized());
        println!("{}", render_normalized_chart(&sweep));
        write_out(out, &format!("fig12_c{c}.csv"), &sweep.to_normalized_csv());
    }
}

fn run_fig13(scale: Scale, out: &Option<PathBuf>) {
    println!("== Fig. 13: uniform computation in [0, WCET] (8 tasks) ==");
    let sweep = fig13(scale);
    println!("{}", sweep.render_normalized());
    println!("{}", render_normalized_chart(&sweep));
    write_out(out, "fig13_uniform.csv", &sweep.to_normalized_csv());
}

fn run_fig16(scale: Scale, out: &Option<PathBuf>) {
    println!("== Fig. 16: whole-system power on the prototype (watts) ==");
    let (names, rows) = fig16(scale);
    let mut csv = format!("utilization,{}\n", names.join(","));
    print!("  util");
    for n in &names {
        print!(" {n:>9}");
    }
    println!();
    for (u, watts) in rows {
        print!("  {u:4.2}");
        csv.push_str(&format!("{u:.3}"));
        for w in watts {
            print!(" {w:8.2}W");
            csv.push_str(&format!(",{w:.3}"));
        }
        println!();
        csv.push('\n');
    }
    write_out(out, "fig16_watts.csv", &csv);
}

fn run_fig17(scale: Scale, out: &Option<PathBuf>) {
    println!("== Fig. 17: simulated CPU power on the prototype machine ==");
    let sweep = fig17(scale);
    println!("{}", sweep.render_normalized());
    write_out(out, "fig17_power.csv", &sweep.to_csv());
}

fn run_ablations(scale: Scale, out: &Option<PathBuf>) {
    println!("== Ablation: RM schedulability test (normalized energy) ==");
    let mut csv = String::from("utilization,staticRM_exact,staticRM_LL,ccRM_exact,ccRM_LL\n");
    println!("  util  sRM-exact    sRM-LL ccRM-exact    ccRM-LL");
    for (u, [se, sl, ce, cl]) in ablation_rm_test(scale) {
        println!("  {u:4.2} {se:10.3} {sl:9.3} {ce:10.3} {cl:10.3}");
        csv.push_str(&format!("{u:.3},{se:.4},{sl:.4},{ce:.4},{cl:.4}\n"));
    }
    write_out(out, "ablation_rm_test.csv", &csv);

    println!("== Ablation: voltage-switch overhead (laEDF, U=0.7, c=0.9) ==");
    let mut csv = String::from("overhead,normalized_energy,misses\n");
    for (label, energy, misses) in ablation_switch_overhead(scale) {
        println!("  {label:<18} energy {energy:5.3}  misses {misses}");
        csv.push_str(&format!("{label},{energy:.4},{misses}\n"));
    }
    write_out(out, "ablation_switch_overhead.csv", &csv);
}

fn run_extensions(scale: Scale, out: &Option<PathBuf>) {
    println!("== Extension: statistical RT-DVS energy vs miss-rate tradeoff ==");
    println!("  (8 tasks, U = 0.85, uniform execution; misses per 1000 releases)");
    let mut csv = String::from("policy,normalized_energy,misses_per_1000\n");
    for row in extension_tradeoff(scale) {
        println!(
            "  {:<16} energy {:5.3}   miss rate {:7.3}",
            row.label, row.energy, row.miss_rate
        );
        csv.push_str(&format!(
            "{},{:.4},{:.4}\n",
            row.label, row.energy, row.miss_rate
        ));
    }
    write_out(out, "extension_tradeoff.csv", &csv);
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    for what in &args.what {
        match what.as_str() {
            "all" => {
                run_table1(&args.out);
                run_table4(&args.out);
                run_traces(&args.out);
                run_fig9(args.scale, &args.out);
                run_fig10(args.scale, &args.out);
                run_fig11(args.scale, &args.out);
                run_fig12(args.scale, &args.out);
                run_fig13(args.scale, &args.out);
                run_fig16(args.scale, &args.out);
                run_fig17(args.scale, &args.out);
                run_ablations(args.scale, &args.out);
                run_extensions(args.scale, &args.out);
            }
            "table1" => run_table1(&args.out),
            "table4" => run_table4(&args.out),
            "traces" | "fig2" | "fig3" | "fig5" | "fig7" => run_traces(&args.out),
            "fig9" => run_fig9(args.scale, &args.out),
            "fig10" => run_fig10(args.scale, &args.out),
            "fig11" => run_fig11(args.scale, &args.out),
            "fig12" => run_fig12(args.scale, &args.out),
            "fig13" => run_fig13(args.scale, &args.out),
            "fig16" => run_fig16(args.scale, &args.out),
            "fig17" => run_fig17(args.scale, &args.out),
            "ablations" => run_ablations(args.scale, &args.out),
            "extensions" => run_extensions(args.scale, &args.out),
            other => {
                eprintln!("unknown target {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
