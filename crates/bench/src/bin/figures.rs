//! Regenerates the paper's headline figures on the sharded runner and
//! maintains the repo's `BENCH_*.json` trajectory.
//!
//! ```text
//! figures [run] [--quick] [--threads N] [--seed S] [--out DIR]
//!     Regenerate Figures 6–8, the smoke sweep, the chaos soak, and the
//!     mode-churn soak; write BENCH_paper_figures.json, BENCH_sweep.json,
//!     BENCH_faults.json, and BENCH_modes.json into DIR (default: the
//!     repository root).
//!
//! figures check [--tolerance FRACTION] [--golden-dir DIR] [--threads N]
//!     Re-run the smoke grid and diff it against the committed
//!     BENCH_sweep.json (default tolerance ±1% energy, deadline misses
//!     must match exactly), then structurally validate the committed
//!     BENCH_paper_figures.json and BENCH_faults.json. Exits non-zero on any divergence —
//!     this is what `xtask bench-check` and the CI bench-smoke stage run.
//!
//! figures bench [--threads-list 1,2,4] [--quick] [--seed S]
//!     Run the Figure 6–8 grid once per thread count; report wall-clock,
//!     event throughput, and speedup vs one thread, and verify the merged
//!     results are byte-identical across thread counts.
//!
//! figures chaos [--tolerance FRACTION] [--golden-dir DIR]
//!     Re-run the chaos-soak smoke grid (fault injection across all six
//!     policies), assert that no miss is ever blamed on a policy, diff
//!     the result against the committed BENCH_faults.json, and validate
//!     its structure. This is what `xtask chaos` and the CI chaos-smoke
//!     stage run.
//!
//! figures modes [--tolerance FRACTION] [--golden-dir DIR]
//!     Re-run the mode-churn smoke grid (transactional mode changes
//!     across all six policies), assert that no commit ever costs a
//!     deadline and that every kernel log replays clean through the
//!     lifecycle auditor, diff the result against the committed
//!     BENCH_modes.json, and validate its structure. This is what
//!     `xtask modes` and the CI mode-churn stage run.
//!
//! figures regulator [--tolerance FRACTION] [--golden-dir DIR]
//!     Re-run the regulator-soak smoke grid (unreliable regulator plus
//!     brownout caps across all six policies), assert that no miss is
//!     ever policy-blamed and that the rate-0 column normalizes to
//!     exactly 1 (the zero-cost-ideal proof), diff the result against
//!     the committed BENCH_regulator.json, and validate its structure.
//!     This is what `xtask regulator` and the CI regulator-smoke stage
//!     run.
//!
//! figures clock [--tolerance FRACTION] [--golden-dir DIR] [--seed S] [--write]
//!     Re-run the clock-fault soak smoke grid (oscillator drift, lost
//!     and coalesced ticks, bounded backward RTC jumps across all six
//!     policies), assert that no miss is ever policy-blamed and that
//!     the rate-0 column normalizes to exactly 1 (the inactive clock
//!     plan is provably free), diff the result against the committed
//!     BENCH_clock.json, and validate its structure. `--write`
//!     regenerates the golden instead. This is what `xtask clock` and
//!     the CI clock-smoke stage run.
//!
//! figures tenants [--golden-dir DIR] [--seed S] [--write]
//!     Re-run the multi-tenant serving soak (one tenant flooding at 10x
//!     its quota beside five compliant tenants and the relaxed Table 2
//!     hard-RT set under injected overruns), enforce the isolation
//!     invariants (zero periodic misses, clean audits, no compliant-
//!     tenant loss, compliant p99 within the configured limit of the
//!     flood-free baseline), and diff the canonical payload byte-for-
//!     byte against the committed BENCH_tenants.json. `--write`
//!     regenerates the golden instead. This is what `xtask tenants` and
//!     the CI tenants-smoke job run.
//!
//! figures throughput [--golden-dir DIR] [--seed S] [--write]
//!     Pin the Table 2 traces byte-identically against the frozen
//!     pre-refactor engine, measure events/s for both engines on the
//!     Table 2 set and a 128-task soak, diff the machine-independent
//!     payload against the committed BENCH_throughput.json, and enforce
//!     the events/s ratio floors (≥5x baseline on the engine-dominated
//!     soak policies). `--write` regenerates the golden instead. This is
//!     what `xtask throughput` and the CI throughput-smoke job run.
//!
//! figures campaign [--golden-dir DIR] [--seed S] [--write]
//!     Re-run the composed chaos campaign (WCET overruns + unreliable
//!     regulator with brownouts + crash/restore kills + mode churn + a
//!     flooding tenant, all derived from one root seed with phased
//!     windows) across all six paper policies, enforce the campaign
//!     invariants (0 policy-blamed misses, 0 audit findings including
//!     the availability rules, kills actually restored), and diff the
//!     canonical payload byte-for-byte against the committed
//!     BENCH_campaign.json. `--write` regenerates the golden instead.
//!     This is what `xtask campaign` and the CI campaign-smoke job run.
//!
//! figures repro [--write] [FILE]
//!     Replay a minimized chaos repro (`rtdvs-repro/v1`) and require the
//!     bit-identical audit violation it pins (default FILE:
//!     results/repro_availability_floor.json). With `--write`, instead
//!     shrink the known-violating campaign down to a minimal repro and
//!     write it to FILE. This is what `xtask repro` runs.
//! ```

use std::num::NonZeroUsize;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rtdvs_bench::artifact::{compare, BenchArtifact};
use rtdvs_bench::campaign::{
    campaign_smoke_config, compare_campaign, known_violating_campaign, replay_repro, run_campaign,
    shrink_plan, CampaignArtifact, ReproArtifact,
};
use rtdvs_bench::chaos::{chaos_smoke_config, run_chaos};
use rtdvs_bench::clock::{clock_smoke_config, run_clock};
use rtdvs_bench::figures::{
    paper_figures, paper_figures_artifact, smoke_sweep_artifact, PaperFigure, Scale,
};
use rtdvs_bench::modes::{modes_smoke_config, run_modes};
use rtdvs_bench::regulator::{regulator_smoke_config, run_regulator};
use rtdvs_bench::render_normalized_chart;
use rtdvs_bench::tenants::{compare_tenants, run_tenants, tenants_smoke_config, TenantsArtifact};
use rtdvs_bench::throughput::{
    compare_throughput, floor_violations, pin_table2_traces, run_throughput,
    throughput_smoke_config, ThroughputArtifact,
};

/// Default experiment seed (the sweep harness default, `0x5eed`).
const DEFAULT_SEED: u64 = 0x5eed;

/// File names of the committed golden artifacts at the repository root.
const PAPER_FIGURES_FILE: &str = "BENCH_paper_figures.json";
const SWEEP_FILE: &str = "BENCH_sweep.json";
const FAULTS_FILE: &str = "BENCH_faults.json";
const MODES_FILE: &str = "BENCH_modes.json";
const REGULATOR_FILE: &str = "BENCH_regulator.json";
const CLOCK_FILE: &str = "BENCH_clock.json";
const THROUGHPUT_FILE: &str = "BENCH_throughput.json";
const TENANTS_FILE: &str = "BENCH_tenants.json";
const CAMPAIGN_FILE: &str = "BENCH_campaign.json";

/// Default location of the committed minimized repro, relative to the
/// repository root.
const REPRO_FILE: &str = "results/repro_availability_floor.json";

struct Args {
    command: String,
    quick: bool,
    threads: Option<usize>,
    threads_list: Vec<usize>,
    seed: u64,
    out: Option<PathBuf>,
    golden_dir: Option<PathBuf>,
    tolerance: f64,
    write: bool,
    file: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        command: "run".to_owned(),
        quick: false,
        threads: None,
        threads_list: vec![1, 2, 4],
        seed: DEFAULT_SEED,
        out: None,
        golden_dir: None,
        tolerance: 0.01,
        write: false,
        file: None,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "run" | "check" | "bench" | "chaos" | "modes" | "regulator" | "clock"
            | "throughput" | "tenants" | "campaign" | "repro" => {
                args.command = a;
            }
            "--quick" => args.quick = true,
            "--write" => args.write = true,
            "--threads" => {
                let v = argv.next().ok_or("--threads needs a count")?;
                args.threads = Some(v.parse().map_err(|e| format!("--threads {v}: {e}"))?);
            }
            "--threads-list" => {
                let v = argv.next().ok_or("--threads-list needs e.g. 1,2,4")?;
                args.threads_list = v
                    .split(',')
                    .map(|t| t.trim().parse::<usize>().map_err(|e| format!("{t}: {e}")))
                    .collect::<Result<_, _>>()?;
                if args.threads_list.is_empty() || args.threads_list.contains(&0) {
                    return Err("--threads-list needs positive counts".to_owned());
                }
            }
            "--seed" => {
                let v = argv.next().ok_or("--seed needs a value")?;
                args.seed = parse_seed(&v)?;
            }
            "--out" => args.out = Some(PathBuf::from(argv.next().ok_or("--out needs a dir")?)),
            "--golden-dir" => {
                args.golden_dir = Some(PathBuf::from(
                    argv.next().ok_or("--golden-dir needs a dir")?,
                ));
            }
            "--tolerance" => {
                let v = argv.next().ok_or("--tolerance needs a fraction")?;
                args.tolerance = v.parse().map_err(|e| format!("--tolerance {v}: {e}"))?;
                if !(args.tolerance > 0.0 && args.tolerance < 1.0) {
                    return Err(format!("tolerance {v} outside (0, 1)"));
                }
            }
            "--help" | "-h" => return Err(usage()),
            other if args.command == "repro" && args.file.is_none() && !other.starts_with('-') => {
                args.file = Some(PathBuf::from(other));
            }
            other => return Err(format!("unknown argument {other}\n{}", usage())),
        }
    }
    Ok(args)
}

fn usage() -> String {
    "usage: figures [run|check|bench|chaos|modes|regulator|clock|throughput|tenants|campaign|repro] \
     [--quick] [--threads N] \
     [--threads-list 1,2,4] [--seed S] [--out DIR] [--golden-dir DIR] [--tolerance FRACTION] \
     [--write] [FILE (repro only)]"
        .to_owned()
}

fn parse_seed(v: &str) -> Result<u64, String> {
    let parsed = match v.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => v.parse(),
    };
    parsed.map_err(|e| format!("--seed {v}: {e}"))
}

/// The workspace root: `crates/bench` sits two levels below it.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/bench sits two levels below the workspace root")
        .to_path_buf()
}

fn default_threads() -> NonZeroUsize {
    std::thread::available_parallelism().unwrap_or(NonZeroUsize::new(1).expect("non-zero"))
}

fn resolve_threads(requested: Option<usize>) -> Result<NonZeroUsize, String> {
    match requested {
        None => Ok(default_threads()),
        Some(n) => NonZeroUsize::new(n).ok_or_else(|| "--threads 0 is meaningless".to_owned()),
    }
}

/// The grid the committed `BENCH_paper_figures.json` is generated at:
/// full 20-point utilization grid, trimmed sample count so regeneration
/// stays tractable on a laptop while the curves stay smooth.
fn figures_scale(quick: bool) -> Scale {
    if quick {
        Scale::quick()
    } else {
        Scale {
            sets_per_point: 20,
            duration: rtdvs_core::time::Time::from_secs(2.0),
            grid: 20,
        }
    }
}

fn print_panel(figure: &PaperFigure) {
    let stats = &figure.run.stats;
    println!(
        "-- Figure {} ({} tasks): {} cells, {} sims, {} events, {} ms wall, {:.0} events/s --",
        figure.figure,
        figure.n_tasks,
        stats.cells,
        stats.sims,
        stats.events,
        stats.wall_ms,
        stats.events_per_sec()
    );
    println!("{}", figure.run.sweep.render_normalized());
    println!("{}", render_normalized_chart(&figure.run.sweep));
}

fn write_artifact(dir: &Path, name: &str, artifact: &BenchArtifact) -> Result<(), String> {
    let path = dir.join(name);
    std::fs::write(&path, artifact.to_json())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    println!("wrote {}", path.display());
    Ok(())
}

fn run(args: &Args) -> Result<(), String> {
    let threads = resolve_threads(args.threads)?;
    let scale = figures_scale(args.quick);
    let out = args.out.clone().unwrap_or_else(repo_root);
    std::fs::create_dir_all(&out).map_err(|e| format!("cannot create {}: {e}", out.display()))?;

    println!(
        "== Figures 6-8: {}-point grid x {} sets x 6 policies, {} thread(s) ==",
        scale.grid,
        scale.sets_per_point,
        threads.get()
    );
    let figures = paper_figures(scale, args.seed, threads);
    for figure in &figures {
        print_panel(figure);
    }
    let artifact = paper_figures_artifact(&figures, scale, args.seed, threads);
    write_artifact(&out, PAPER_FIGURES_FILE, &artifact)?;

    let smoke = smoke_sweep_artifact(args.seed, threads);
    write_artifact(&out, SWEEP_FILE, &smoke)?;

    let faults = run_chaos(&chaos_smoke_config(args.seed));
    write_artifact(&out, FAULTS_FILE, &faults)?;

    let churn = run_modes(&modes_smoke_config(args.seed));
    write_artifact(&out, MODES_FILE, &churn)?;

    let hardened = run_regulator(&regulator_smoke_config(args.seed));
    write_artifact(&out, REGULATOR_FILE, &hardened)?;
    println!(
        "total wall: {} ms across {} simulations",
        artifact.wall_ms + smoke.wall_ms + faults.wall_ms + churn.wall_ms + hardened.wall_ms,
        figures.iter().map(|f| f.run.stats.sims).sum::<u64>()
    );
    Ok(())
}

fn load_golden(dir: &Path, name: &str) -> Result<BenchArtifact, String> {
    let path = dir.join(name);
    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "cannot read golden {}: {e} (run `figures run` to create it)",
            path.display()
        )
    })?;
    BenchArtifact::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn check(args: &Args) -> Result<(), String> {
    let threads = resolve_threads(args.threads)?;
    let dir = args.golden_dir.clone().unwrap_or_else(repo_root);

    // 1. Fresh smoke run vs the committed golden, within tolerance.
    let golden = load_golden(&dir, SWEEP_FILE)?;
    let fresh = smoke_sweep_artifact(golden.seed, threads);
    let problems = compare(&golden, &fresh, args.tolerance);
    if problems.is_empty() {
        println!(
            "bench-check: smoke grid reproduces {} within ±{:.1}% ({} points, {} ms)",
            SWEEP_FILE,
            100.0 * args.tolerance,
            golden.series.iter().map(|s| s.points.len()).sum::<usize>(),
            fresh.wall_ms
        );
    } else {
        for p in &problems {
            eprintln!("bench-check: {p}");
        }
        return Err(format!(
            "{} divergence(s) from {SWEEP_FILE}; if the energy model intentionally \
             changed, regenerate the goldens with `figures run` and commit them",
            problems.len()
        ));
    }

    // 2. Structural invariants of the committed paper-figures artifact
    //    (full regeneration is `figures run`; too slow for every push).
    for name in [PAPER_FIGURES_FILE, FAULTS_FILE, MODES_FILE, REGULATOR_FILE] {
        let golden = load_golden(&dir, name)?;
        let structural = golden.validate();
        if structural.is_empty() {
            println!(
                "bench-check: {} is structurally sound ({} series)",
                name,
                golden.series.len()
            );
        } else {
            for p in &structural {
                eprintln!("bench-check: {name}: {p}");
            }
            return Err(format!(
                "{name}: {} structural problem(s)",
                structural.len()
            ));
        }
    }
    Ok(())
}

fn chaos(args: &Args) -> Result<(), String> {
    let dir = args.golden_dir.clone().unwrap_or_else(repo_root);
    let golden = load_golden(&dir, FAULTS_FILE)?;
    let fresh = run_chaos(&chaos_smoke_config(golden.seed));

    // 1. Containment never lets an injected fault read as a policy bug.
    let mut fault_misses = 0u64;
    for series in &fresh.series {
        for p in &series.points {
            if p.deadline_miss != 0 {
                return Err(format!(
                    "chaos: {} blamed for {} miss(es) at fault rate {} — \
                     a policy-bug miss under injection is a real bug",
                    series.policy, p.deadline_miss, p.u
                ));
            }
            fault_misses += p.fault_miss;
        }
    }

    // 2. The fresh soak reproduces the committed golden.
    let problems = compare(&golden, &fresh, args.tolerance);
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("chaos: {p}");
        }
        return Err(format!(
            "{} divergence(s) from {FAULTS_FILE}; if the fault model intentionally \
             changed, regenerate the goldens with `figures run` and commit them",
            problems.len()
        ));
    }

    // 3. Structural invariants of the artifact itself.
    let structural = fresh.validate();
    if !structural.is_empty() {
        for p in &structural {
            eprintln!("chaos: {FAULTS_FILE}: {p}");
        }
        return Err(format!("{} structural problem(s)", structural.len()));
    }

    println!(
        "chaos: {} policies x {} fault rates reproduce {} within ±{:.1}% \
         ({} fault-induced misses, 0 policy bugs, {} ms)",
        fresh.grid.policies.len(),
        fresh.grid.utilizations.len(),
        FAULTS_FILE,
        100.0 * args.tolerance,
        fault_misses,
        fresh.wall_ms
    );
    Ok(())
}

fn modes(args: &Args) -> Result<(), String> {
    let dir = args.golden_dir.clone().unwrap_or_else(repo_root);
    let golden = load_golden(&dir, MODES_FILE)?;
    let fresh = run_modes(&modes_smoke_config(golden.seed));

    // 1. No commit ever costs a deadline, and every kernel log replays
    //    clean through the lifecycle auditor (fault_miss carries the
    //    finding count in mode-churn grids).
    let mut commits_energy = 0.0f64;
    for series in &fresh.series {
        for p in &series.points {
            if p.deadline_miss != 0 {
                return Err(format!(
                    "modes: {} missed {} deadline(s) at churn rate {} — \
                     a miss under transactional churn is a safe-point bug",
                    series.policy, p.deadline_miss, p.u
                ));
            }
            if p.fault_miss != 0 {
                return Err(format!(
                    "modes: {} has {} lifecycle audit finding(s) at churn rate {}",
                    series.policy, p.fault_miss, p.u
                ));
            }
            commits_energy = commits_energy.max(p.energy_norm);
        }
    }

    // 2. The fresh soak reproduces the committed golden.
    let problems = compare(&golden, &fresh, args.tolerance);
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("modes: {p}");
        }
        return Err(format!(
            "{} divergence(s) from {MODES_FILE}; if the transaction machinery \
             intentionally changed, regenerate the goldens with `figures run` and commit them",
            problems.len()
        ));
    }

    // 3. Structural invariants of the artifact itself.
    let structural = fresh.validate();
    if !structural.is_empty() {
        for p in &structural {
            eprintln!("modes: {MODES_FILE}: {p}");
        }
        return Err(format!("{} structural problem(s)", structural.len()));
    }

    println!(
        "modes: {} policies x {} churn rates reproduce {} within ±{:.1}% \
         (0 misses, 0 audit findings, worst churn overhead {:.3}x, {} ms)",
        fresh.grid.policies.len(),
        fresh.grid.utilizations.len(),
        MODES_FILE,
        100.0 * args.tolerance,
        commits_energy,
        fresh.wall_ms
    );
    Ok(())
}

fn regulator(args: &Args) -> Result<(), String> {
    let dir = args.golden_dir.clone().unwrap_or_else(repo_root);
    let golden = load_golden(&dir, REGULATOR_FILE)?;
    let fresh = run_regulator(&regulator_smoke_config(golden.seed));

    // 1. No miss is ever policy-blamed, and the rate-0 column normalizes
    //    to exactly 1: the ideal regulator is provably free.
    let mut excused_misses = 0u64;
    for series in &fresh.series {
        for p in &series.points {
            if p.deadline_miss != 0 {
                return Err(format!(
                    "regulator: {} blamed for {} miss(es) at adversity rate {} — \
                     a policy-blamed miss under regulator failure is a driver bug",
                    series.policy, p.deadline_miss, p.u
                ));
            }
            if p.u.to_bits() == 0.0_f64.to_bits() && p.energy_norm.to_bits() != 1.0_f64.to_bits() {
                return Err(format!(
                    "regulator: {} normalizes to {} at rate 0 — the ideal \
                     regulator must be byte-identical to no regulator at all",
                    series.policy, p.energy_norm
                ));
            }
            excused_misses += p.fault_miss;
        }
    }

    // 2. The fresh soak reproduces the committed golden.
    let problems = compare(&golden, &fresh, args.tolerance);
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("regulator: {p}");
        }
        return Err(format!(
            "{} divergence(s) from {REGULATOR_FILE}; if the hardening model \
             intentionally changed, regenerate the goldens with `figures run` and commit them",
            problems.len()
        ));
    }

    // 3. Structural invariants of the artifact itself.
    let structural = fresh.validate();
    if !structural.is_empty() {
        for p in &structural {
            eprintln!("regulator: {REGULATOR_FILE}: {p}");
        }
        return Err(format!("{} structural problem(s)", structural.len()));
    }

    println!(
        "regulator: {} policies x {} adversity rates reproduce {} within ±{:.1}% \
         ({} excused misses, 0 policy-blamed, ideal regulator bit-exact, {} ms)",
        fresh.grid.policies.len(),
        fresh.grid.utilizations.len(),
        REGULATOR_FILE,
        100.0 * args.tolerance,
        excused_misses,
        fresh.wall_ms
    );
    Ok(())
}

/// Shared invariants of a fresh clock-soak grid: no policy-blamed
/// miss anywhere, and the rate-0 column bitwise 1 (the inactive clock
/// plan draws nothing, so it must be byte-identical to no plan at all).
fn clock_invariants(fresh: &BenchArtifact) -> Result<u64, String> {
    let mut excused_misses = 0u64;
    for series in &fresh.series {
        for p in &series.points {
            if p.deadline_miss != 0 {
                return Err(format!(
                    "clock: {} blamed for {} miss(es) at fault rate {} — \
                     a policy-blamed miss under clock faults is a time-base bug",
                    series.policy, p.deadline_miss, p.u
                ));
            }
            if p.u.to_bits() == 0.0_f64.to_bits() && p.energy_norm.to_bits() != 1.0_f64.to_bits() {
                return Err(format!(
                    "clock: {} normalizes to {} at rate 0 — the inactive clock \
                     plan must be byte-identical to no plan at all",
                    series.policy, p.energy_norm
                ));
            }
            excused_misses += p.fault_miss;
        }
    }
    Ok(excused_misses)
}

fn clock(args: &Args) -> Result<(), String> {
    let dir = args.golden_dir.clone().unwrap_or_else(repo_root);
    let path = dir.join(CLOCK_FILE);

    if args.write {
        let art = run_clock(&clock_smoke_config(args.seed));
        clock_invariants(&art)?;
        let structural = art.validate();
        if !structural.is_empty() {
            for p in &structural {
                eprintln!("clock: {p}");
            }
            return Err(format!("{} structural problem(s)", structural.len()));
        }
        std::fs::write(&path, art.to_json())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
        return Ok(());
    }

    let golden = load_golden(&dir, CLOCK_FILE)?;
    let fresh = run_clock(&clock_smoke_config(golden.seed));

    // 1. No miss is ever policy-blamed, and the rate-0 column normalizes
    //    to exactly 1: the inactive clock plan is provably free.
    let excused_misses = clock_invariants(&fresh)?;

    // 2. The fresh soak reproduces the committed golden.
    let problems = compare(&golden, &fresh, args.tolerance);
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("clock: {p}");
        }
        return Err(format!(
            "{} divergence(s) from {CLOCK_FILE}; if the time-base model \
             intentionally changed, regenerate with `figures clock --write` and commit",
            problems.len()
        ));
    }

    // 3. Structural invariants of the artifact itself.
    let structural = fresh.validate();
    if !structural.is_empty() {
        for p in &structural {
            eprintln!("clock: {CLOCK_FILE}: {p}");
        }
        return Err(format!("{} structural problem(s)", structural.len()));
    }

    println!(
        "clock: {} policies x {} fault rates reproduce {} within ±{:.1}% \
         ({} excused misses, 0 policy-blamed, inactive plan bit-exact, {} ms)",
        fresh.grid.policies.len(),
        fresh.grid.utilizations.len(),
        CLOCK_FILE,
        100.0 * args.tolerance,
        excused_misses,
        fresh.wall_ms
    );
    Ok(())
}

fn tenants(args: &Args) -> Result<(), String> {
    let dir = args.golden_dir.clone().unwrap_or_else(repo_root);
    let path = dir.join(TENANTS_FILE);

    if args.write {
        let art = run_tenants(&tenants_smoke_config(args.seed));
        print_tenants_summary(&art);
        let broken = art.validate();
        if !broken.is_empty() {
            for p in &broken {
                eprintln!("tenants: {p}");
            }
            return Err(format!("{} isolation invariant(s) broken", broken.len()));
        }
        std::fs::write(&path, art.to_json())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
        print_tenants_summary(&art);
        return Ok(());
    }

    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "cannot read golden {}: {e} (run `figures tenants --write` to create it)",
            path.display()
        )
    })?;
    let golden =
        TenantsArtifact::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;

    // 1. Fresh soak at the golden's seed; everything except wall clock is
    //    a pure function of it, so the canonical payloads must be
    //    byte-identical.
    let fresh = run_tenants(&tenants_smoke_config(golden.seed));
    let problems = compare_tenants(&golden, &fresh);
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("tenants: {p}");
        }
        return Err(format!(
            "{} divergence(s) from {TENANTS_FILE}; if the serving model intentionally \
             changed, regenerate with `figures tenants --write` and commit",
            problems.len()
        ));
    }

    // 2. The isolation invariants hold on the fresh run: no periodic
    //    miss, clean audits, no compliant-tenant loss, p99 within limit.
    let broken = fresh.validate();
    if !broken.is_empty() {
        for p in &broken {
            eprintln!("tenants: {p}");
        }
        return Err(format!("{} isolation invariant(s) broken", broken.len()));
    }

    print_tenants_summary(&fresh);
    Ok(())
}

fn print_tenants_summary(art: &TenantsArtifact) {
    let offered: u64 = art.tenants.iter().map(|t| t.offered).sum();
    let worst_ratio = art
        .tenants
        .iter()
        .filter(|t| !t.flood)
        .map(|t| t.p99_ratio)
        .fold(0.0, f64::max);
    println!(
        "tenants: {} tenants, {} requests offered over {} ms; 0 periodic misses, \
         0 audit findings, worst compliant p99 inflation {:.3}x (limit {:.2}x), {} ms",
        art.tenants.len(),
        offered,
        art.horizon_ms,
        worst_ratio,
        art.p99_ratio_limit,
        art.wall_ms
    );
    for t in &art.tenants {
        println!(
            "  tenant{} {} quota {:.3} ms  offered {:>8}  served {:>8}  shed {:>7}  \
             rejected {:>7}  quarantined {:>5} periods  p50 {:>7.3} p99 {:>7.3} \
             p999 {:>7.3} ms{}",
            t.tenant,
            if t.flood { "[flood]" } else { "       " },
            t.quota_ms,
            t.offered,
            t.served,
            t.shed,
            t.rejected,
            t.quarantined_periods,
            t.p50_ms,
            t.p99_ms,
            t.p999_ms,
            if t.flood {
                String::new()
            } else {
                format!("  ({:.3}x flood-free p99)", t.p99_ratio)
            }
        );
    }
}

fn throughput(args: &Args) -> Result<(), String> {
    let dir = args.golden_dir.clone().unwrap_or_else(repo_root);
    let path = dir.join(THROUGHPUT_FILE);

    // 1. Byte-identical-trace pinning: the O(1) engine must agree with
    //    the frozen baseline on the paper's Table 2 set, byte for byte,
    //    before any timing is trusted.
    pin_table2_traces().map_err(|e| format!("throughput: trace pinning failed: {e}"))?;
    println!("throughput: Table 2 traces byte-identical to the pre-refactor engine (6 policies)");

    if args.write {
        let art = run_throughput(&throughput_smoke_config(args.seed));
        let structural = art.validate();
        if !structural.is_empty() {
            for p in &structural {
                eprintln!("throughput: {p}");
            }
            return Err(format!("{} structural problem(s)", structural.len()));
        }
        std::fs::write(&path, art.to_json())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
        print_throughput_summary(&art);
        return Ok(());
    }

    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "cannot read golden {}: {e} (run `figures throughput --write` to create it)",
            path.display()
        )
    })?;
    let golden =
        ThroughputArtifact::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;

    // 2. Fresh measurement at the golden's seed and shape.
    let mut cfg = throughput_smoke_config(golden.seed);
    cfg.floor_ratio = golden.floor_ratio;
    cfg.table2_floor_ratio = golden.table2_floor_ratio;
    let fresh = run_throughput(&cfg);

    // 3. The machine-independent payload (event counts, panel shapes,
    //    floors) must reproduce the golden exactly.
    let problems = compare_throughput(&golden, &fresh);
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("throughput: {p}");
        }
        return Err(format!(
            "{} divergence(s) from {THROUGHPUT_FILE}; if the engine or workload \
             intentionally changed, regenerate with `figures throughput --write` and commit",
            problems.len()
        ));
    }

    // 4. The events/s floors hold on this machine's fresh measurement.
    let slow = floor_violations(&fresh);
    if !slow.is_empty() {
        for p in &slow {
            eprintln!("throughput: {p}");
        }
        return Err(format!(
            "{} events/s floor violation(s) — the O(1) hot path has regressed",
            slow.len()
        ));
    }

    // 5. Structural invariants of the artifact itself.
    let structural = fresh.validate();
    if !structural.is_empty() {
        for p in &structural {
            eprintln!("throughput: {THROUGHPUT_FILE}: {p}");
        }
        return Err(format!("{} structural problem(s)", structural.len()));
    }

    print_throughput_summary(&fresh);
    Ok(())
}

fn print_throughput_summary(art: &ThroughputArtifact) {
    let floored: Vec<&rtdvs_bench::PolicyThroughput> =
        art.soak.iter().filter(|p| p.floored).collect();
    let worst = floored
        .iter()
        .map(|p| p.ratio)
        .fold(f64::INFINITY, f64::min);
    println!(
        "throughput: {}-task soak sustains {:.1}-{:.1}x baseline events/s on {} floored \
         policies (floor {}x), table2 pinned, {} ms",
        art.soak_tasks,
        worst,
        floored.iter().map(|p| p.ratio).fold(0.0, f64::max),
        floored.len(),
        art.floor_ratio,
        art.wall_ms
    );
    for (panel, rows) in [("soak", &art.soak), ("table2", &art.table2)] {
        for p in rows {
            println!(
                "  {panel:>6} {:>9} {:>10} events {:>12.0} vs {:>12.0} events/s  {:>6.2}x{}",
                p.policy,
                p.events,
                p.engine_eps,
                p.baseline_eps,
                p.ratio,
                if p.floored { "  [floored]" } else { "" }
            );
        }
    }
}

fn campaign(args: &Args) -> Result<(), String> {
    let dir = args.golden_dir.clone().unwrap_or_else(repo_root);
    let path = dir.join(CAMPAIGN_FILE);

    if args.write {
        let art = run_campaign(&campaign_smoke_config(args.seed));
        let broken = art.validate();
        if !broken.is_empty() {
            for p in &broken {
                eprintln!("campaign: {p}");
            }
            return Err(format!("{} campaign invariant(s) broken", broken.len()));
        }
        std::fs::write(&path, art.to_json())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
        print_campaign_summary(&art);
        return Ok(());
    }

    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "cannot read golden {}: {e} (run `figures campaign --write` to create it)",
            path.display()
        )
    })?;
    let golden =
        CampaignArtifact::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;

    // 1. Fresh campaign at the golden's seed; everything except wall
    //    clock is a pure function of it, so the canonical payloads must
    //    be byte-identical.
    let fresh = run_campaign(&campaign_smoke_config(golden.seed));
    let problems = compare_campaign(&golden, &fresh);
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("campaign: {p}");
        }
        return Err(format!(
            "{} divergence(s) from {CAMPAIGN_FILE}; if the chaos model intentionally \
             changed, regenerate with `figures campaign --write` and commit",
            problems.len()
        ));
    }

    // 2. The campaign invariants hold on the fresh run: no policy-blamed
    //    miss, no audit finding, every kill restored, availability above
    //    the declared floor.
    let broken = fresh.validate();
    if !broken.is_empty() {
        for p in &broken {
            eprintln!("campaign: {p}");
        }
        return Err(format!("{} campaign invariant(s) broken", broken.len()));
    }

    print_campaign_summary(&fresh);
    Ok(())
}

fn print_campaign_summary(art: &CampaignArtifact) {
    println!(
        "campaign: {} policies x [{}] over {} ms (seed {:#x}); 0 blamed misses, \
         0 audit findings, floor {:.2}, recovery bound {:.0} ms, {} ms wall",
        art.cells.len(),
        art.dimensions.join(", "),
        art.horizon_ms,
        art.seed,
        art.min_availability,
        art.max_recovery_ms,
        art.wall_ms
    );
    for c in &art.cells {
        println!(
            "  {:>9}  kills {:>2} restores {:>2}  churn {:>3}  served {:>5}/{:>5}  \
             excused {:>3}  avail {:.4}  mttf {:>8.1} mttr {:>7.1} worst-rec {:>7.1} ms",
            c.policy,
            c.kills,
            c.restores,
            c.churn_commits,
            c.served,
            c.compliant_offered + c.flood_offered,
            c.excused_misses,
            c.availability,
            c.mttf_ms,
            c.mttr_ms,
            c.worst_recovery_ms
        );
    }
}

fn repro(args: &Args) -> Result<(), String> {
    let path = args
        .file
        .clone()
        .unwrap_or_else(|| repo_root().join(REPRO_FILE));

    if args.write {
        let (kind, plan, avail) = known_violating_campaign(args.seed);
        println!(
            "repro: shrinking the known-violating campaign (policy {}, {} ms, \
             dimensions [{}])...",
            kind.name(),
            plan.horizon_ms,
            plan.active_dimensions().join(", ")
        );
        let repro = shrink_plan(kind, &plan, &avail)?;
        replay_repro(&repro)?;
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
        std::fs::write(&path, repro.to_json())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
        print_repro_summary(&repro);
        return Ok(());
    }

    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "cannot read repro {}: {e} (run `figures repro --write` to create it)",
            path.display()
        )
    })?;
    let repro = ReproArtifact::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    replay_repro(&repro)?;
    println!(
        "repro: {} replays to the identical violation",
        path.display()
    );
    print_repro_summary(&repro);
    Ok(())
}

fn print_repro_summary(repro: &ReproArtifact) {
    println!(
        "  policy {}  seed {:#x}  horizon {} ms  dimensions [{}]",
        repro.policy,
        repro.plan.seed,
        repro.plan.horizon_ms,
        repro.plan.active_dimensions().join(", ")
    );
    println!(
        "  [{}] t={:.3} ms: {}",
        repro.violation.rule, repro.violation.time_ms, repro.violation.details
    );
}

fn bench(args: &Args) -> Result<(), String> {
    let scale = figures_scale(args.quick);
    println!(
        "== thread scaling on the Figure 6-8 grid ({} points x {} sets x 6 policies x 3 panels) ==",
        scale.grid, scale.sets_per_point
    );
    let mut baseline_ms = None;
    let mut baseline_json = None;
    println!("  threads    wall_ms    events/s   speedup");
    for &n in &args.threads_list {
        let threads = NonZeroUsize::new(n).ok_or("thread counts must be positive")?;
        let figures = paper_figures(scale, args.seed, threads);
        let artifact = paper_figures_artifact(&figures, scale, args.seed, threads);
        let wall: u64 = figures.iter().map(|f| f.run.stats.wall_ms).sum();
        let events: u64 = figures.iter().map(|f| f.run.stats.events).sum();
        let speedup = match baseline_ms {
            None => {
                baseline_ms = Some(wall);
                1.0
            }
            Some(base) => base as f64 / (wall.max(1)) as f64,
        };
        println!(
            "  {n:>7} {wall:>10} {:>11.0} {speedup:>8.2}x",
            events as f64 * 1000.0 / wall.max(1) as f64
        );
        let canonical = artifact.canonical_json();
        match &baseline_json {
            None => baseline_json = Some(canonical),
            Some(base) => {
                if *base != canonical {
                    return Err(format!(
                        "merged results at {n} threads are not byte-identical to the baseline"
                    ));
                }
                println!("           merged results byte-identical to 1-thread baseline");
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_str() {
        "run" => run(&args),
        "check" => check(&args),
        "bench" => bench(&args),
        "chaos" => chaos(&args),
        "modes" => modes(&args),
        "regulator" => regulator(&args),
        "clock" => clock(&args),
        "throughput" => throughput(&args),
        "tenants" => tenants(&args),
        "campaign" => campaign(&args),
        "repro" => repro(&args),
        other => Err(format!("unknown command {other}\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
