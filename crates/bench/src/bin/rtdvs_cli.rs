//! Command-line front-end for the RT-DVS stack.
//!
//! ```text
//! rtdvs-cli analyze  --tasks FILE [--machine NAME]
//! rtdvs-cli simulate --tasks FILE [--machine NAME] [--policy NAME]
//!                    [--duration-ms N] [--exec wcet|uniform|cN] [--idle-level X]
//!                    [--sporadic FRAC] [--seed N] [--gantt] [--trace-csv FILE]
//! rtdvs-cli compare  --tasks FILE [--machine NAME] [--duration-ms N] [...]
//! ```
//!
//! Machines: `machine0` (default), `machine1`, `machine2`, `k6`, `crusoe`,
//! `xscale`. Policies: `edf`, `rm`, `static-edf`, `static-rm`, `cc-edf`,
//! `cc-rm`, `la-edf` (default), `stoch-edf=<confidence>`, `interval`,
//! `manual=<point>`.

use std::fs;
use std::process::ExitCode;

use rtdvs_bench::taskfile::parse_task_set;
use rtdvs_core::analysis::{
    edf_feasible_at, liu_layland_bound, rm_feasible_at, static_edf_point, static_rm_point, RmTest,
};
use rtdvs_core::hyperperiod::hyperperiod;
use rtdvs_core::machine::Machine;
use rtdvs_core::policy::PolicyKind;
use rtdvs_core::sched::SchedulerKind;
use rtdvs_core::task::TaskSet;
use rtdvs_core::time::Time;
use rtdvs_platform::{crusoe_tm5400, xscale_80200, PowerNowCpu};
use rtdvs_sim::{simulate, theoretical_bound, ArrivalModel, ExecModel, SimConfig};

fn machine_by_name(name: &str) -> Result<Machine, String> {
    match name {
        "machine0" => Ok(Machine::machine0()),
        "machine1" => Ok(Machine::machine1()),
        "machine2" => Ok(Machine::machine2()),
        "k6" => PowerNowCpu::k6_2_plus_550()
            .machine()
            .map_err(|e| e.to_string()),
        "crusoe" => crusoe_tm5400().map_err(|e| e.to_string()),
        "xscale" => xscale_80200().map_err(|e| e.to_string()),
        other => Err(format!(
            "unknown machine {other}; expected machine0|machine1|machine2|k6|crusoe|xscale"
        )),
    }
}

fn policy_by_name(name: &str) -> Result<PolicyKind, String> {
    if let Some(conf) = name.strip_prefix("stoch-edf=") {
        let confidence: f64 = conf.parse().map_err(|_| format!("bad confidence {conf}"))?;
        if !(confidence > 0.0 && confidence <= 1.0) {
            return Err(format!("confidence {confidence} outside (0, 1]"));
        }
        return Ok(PolicyKind::StochasticEdf { confidence });
    }
    if let Some(point) = name.strip_prefix("manual=") {
        let point: usize = point.parse().map_err(|_| format!("bad point {point}"))?;
        return Ok(PolicyKind::Manual {
            scheduler: SchedulerKind::Edf,
            point,
        });
    }
    match name {
        "edf" => Ok(PolicyKind::PlainEdf),
        "rm" => Ok(PolicyKind::PlainRm),
        "static-edf" => Ok(PolicyKind::StaticEdf),
        "static-rm" => Ok(PolicyKind::StaticRm(RmTest::default())),
        "cc-edf" => Ok(PolicyKind::CcEdf),
        "cc-rm" => Ok(PolicyKind::CcRm(RmTest::default())),
        "la-edf" => Ok(PolicyKind::LaEdf),
        "interval" => Ok(PolicyKind::Interval),
        other => Err(format!("unknown policy {other}")),
    }
}

fn exec_by_name(name: &str) -> Result<ExecModel, String> {
    if name == "wcet" {
        return Ok(ExecModel::Wcet);
    }
    if name == "uniform" {
        return Ok(ExecModel::uniform());
    }
    if let Some(c) = name.strip_prefix('c') {
        let c: f64 = c.parse().map_err(|_| format!("bad exec model {name}"))?;
        if !(0.0..=1.0).contains(&c) {
            return Err(format!("fraction {c} outside [0, 1]"));
        }
        return Ok(ExecModel::ConstantFraction(c));
    }
    Err(format!(
        "unknown exec model {name}; expected wcet|uniform|c<frac>"
    ))
}

#[derive(Debug)]
struct Options {
    command: String,
    tasks: Option<String>,
    machine: Machine,
    policy: PolicyKind,
    duration: Time,
    exec: ExecModel,
    idle_level: f64,
    sporadic: Option<f64>,
    seed: u64,
    gantt: bool,
    trace_csv: Option<String>,
}

fn parse_options() -> Result<Options, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(usage)?;
    let mut opts = Options {
        command,
        tasks: None,
        machine: Machine::machine0(),
        policy: PolicyKind::LaEdf,
        duration: Time::from_secs(1.0),
        exec: ExecModel::Wcet,
        idle_level: 0.0,
        sporadic: None,
        seed: 0,
        gantt: false,
        trace_csv: None,
    };
    while let Some(flag) = argv.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            argv.next().ok_or(format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--tasks" => opts.tasks = Some(value("--tasks")?),
            "--machine" => opts.machine = machine_by_name(&value("--machine")?)?,
            "--policy" => opts.policy = policy_by_name(&value("--policy")?)?,
            "--duration-ms" => {
                let ms: f64 = value("--duration-ms")?
                    .parse()
                    .map_err(|_| "bad duration".to_owned())?;
                opts.duration = Time::from_ms(ms);
            }
            "--exec" => opts.exec = exec_by_name(&value("--exec")?)?,
            "--idle-level" => {
                opts.idle_level = value("--idle-level")?
                    .parse()
                    .map_err(|_| "bad idle level".to_owned())?;
            }
            "--sporadic" => {
                opts.sporadic = Some(
                    value("--sporadic")?
                        .parse()
                        .map_err(|_| "bad sporadic fraction".to_owned())?,
                );
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "bad seed".to_owned())?;
            }
            "--gantt" => opts.gantt = true,
            "--trace-csv" => opts.trace_csv = Some(value("--trace-csv")?),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok(opts)
}

fn usage() -> String {
    "usage: rtdvs-cli <analyze|simulate|compare> --tasks FILE [options]".to_owned()
}

fn load_tasks(opts: &Options) -> Result<TaskSet, String> {
    let path = opts.tasks.as_ref().ok_or("--tasks FILE is required")?;
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_task_set(&text).map_err(|e| format!("{path}: {e}"))
}

fn sim_config(opts: &Options) -> SimConfig {
    let mut cfg = SimConfig::new(opts.duration)
        .with_exec(opts.exec.clone())
        .with_idle_level(opts.idle_level)
        .with_seed(opts.seed);
    if let Some(extra) = opts.sporadic {
        cfg = cfg.with_arrival(ArrivalModel::Sporadic {
            max_extra_fraction: extra,
        });
    }
    if opts.gantt || opts.trace_csv.is_some() {
        cfg = cfg.with_trace();
    }
    cfg
}

fn cmd_analyze(opts: &Options) -> Result<(), String> {
    let tasks = load_tasks(opts)?;
    let m = &opts.machine;
    println!("machine: {m}");
    println!("tasks: {}", tasks.len());
    for (id, t) in tasks.iter() {
        println!(
            "  {id}: P = {:.3} ms, C = {:.3} ms, U = {:.4}",
            t.period().as_ms(),
            t.wcet().as_ms(),
            t.utilization()
        );
    }
    let u = tasks.total_utilization();
    println!("total worst-case utilization: {u:.4}");
    match hyperperiod(&tasks) {
        Some(h) => println!("hyperperiod: {:.3} ms", h.as_ms()),
        None => println!("hyperperiod: (too large or off-grid)"),
    }
    println!(
        "EDF schedulable at max frequency: {}",
        edf_feasible_at(&tasks, 1.0)
    );
    println!(
        "RM Liu-Layland bound n(2^(1/n)-1) = {:.4}: {}",
        liu_layland_bound(tasks.len()),
        rm_feasible_at(&tasks, 1.0, RmTest::LiuLayland)
    );
    println!(
        "RM exact (scheduling points): {}",
        rm_feasible_at(&tasks, 1.0, RmTest::SchedulingPoints)
    );
    match static_edf_point(&tasks, m) {
        Some(idx) => println!(
            "static EDF operating point: {} (f = {:.3})",
            idx,
            m.point(idx).freq
        ),
        None => println!("static EDF operating point: none (infeasible)"),
    }
    match static_rm_point(&tasks, m, RmTest::default()) {
        Some(idx) => println!(
            "static RM operating point: {} (f = {:.3})",
            idx,
            m.point(idx).freq
        ),
        None => println!("static RM operating point: none (infeasible)"),
    }
    Ok(())
}

fn cmd_simulate(opts: &Options) -> Result<(), String> {
    let tasks = load_tasks(opts)?;
    let cfg = sim_config(opts);
    let report = simulate(&tasks, &opts.machine, opts.policy, &cfg);
    println!(
        "policy {} on {} for {:.1} ms",
        report.policy,
        opts.machine.name(),
        opts.duration.as_ms()
    );
    println!(
        "energy: {:.3} (mean power {:.4})",
        report.energy(),
        report.mean_power()
    );
    println!(
        "work executed: {:.3} ms; switches: {} ({} voltage)",
        report.total_work().as_ms(),
        report.switches,
        report.voltage_switches
    );
    println!("deadline misses: {}", report.misses.len());
    for miss in report.misses.iter().take(5) {
        println!(
            "  {} missed at {:.3} ms (invocation {}, {:.3} ms of work left)",
            miss.task,
            miss.deadline.as_ms(),
            miss.invocation,
            miss.remaining.as_ms()
        );
    }
    let bound = theoretical_bound(
        &opts.machine,
        report.total_work(),
        opts.duration,
        opts.idle_level,
    );
    println!("theoretical bound for this work: {bound:.3}");
    if let Some(trace) = &report.trace {
        if opts.gantt {
            let span = Time::from_ms(opts.duration.as_ms().min(100.0));
            println!("\nfirst {:.0} ms:", span.as_ms());
            println!("{}", trace.render_gantt(&opts.machine, span, 72));
        }
        if let Some(path) = &opts.trace_csv {
            fs::write(path, trace.to_csv(&opts.machine))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("trace written to {path}");
        }
    }
    Ok(())
}

fn cmd_compare(opts: &Options) -> Result<(), String> {
    let tasks = load_tasks(opts)?;
    let cfg = sim_config(opts);
    let base = simulate(&tasks, &opts.machine, PolicyKind::PlainEdf, &cfg);
    println!(
        "{:<10} {:>12} {:>8} {:>8} {:>9}",
        "policy", "energy", "normd", "misses", "switches"
    );
    for kind in PolicyKind::paper_six() {
        let r = simulate(&tasks, &opts.machine, kind, &cfg);
        println!(
            "{:<10} {:>12.2} {:>8.3} {:>8} {:>9}",
            kind.name(),
            r.energy(),
            r.energy() / base.energy(),
            r.misses.len(),
            r.switches
        );
    }
    let bound = theoretical_bound(
        &opts.machine,
        base.total_work(),
        opts.duration,
        opts.idle_level,
    );
    println!(
        "{:<10} {:>12.2} {:>8.3}",
        "bound",
        bound,
        bound / base.energy()
    );
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_options() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let result = match opts.command.as_str() {
        "analyze" => cmd_analyze(&opts),
        "simulate" => cmd_simulate(&opts),
        "compare" => cmd_compare(&opts),
        other => Err(format!("unknown command {other}\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
