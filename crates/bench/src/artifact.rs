//! Machine-readable `BENCH_*.json` artifacts and their comparator.
//!
//! Schema (version 1):
//!
//! ```json
//! {
//!   "schema": "rtdvs-bench/v1",
//!   "meta": {
//!     "seed": 24301,
//!     "threads": 4,
//!     "grid": {
//!       "label": "paper-figures",
//!       "n_tasks": [5, 10, 15],
//!       "utilizations": [0.05, ...],
//!       "sets_per_point": 50,
//!       "duration_ms": 2000.0,
//!       "policies": ["EDF", ...]
//!     }
//!   },
//!   "series": [
//!     {"policy": "ccEDF", "n_tasks": 5,
//!      "points": [{"u": 0.05, "energy_norm": 0.5, "deadline_miss": 0,
//!                  "fault_miss": 0}, ...]},
//!     ...
//!   ],
//!   "wall_ms": 1234
//! }
//! ```
//!
//! Chaos-soak artifacts (grid label `"chaos-soak"`) reuse the schema with
//! reinterpreted axes: `u` is the injected fault rate, `energy_norm` is
//! the chaos run's energy against the same policy's fault-free baseline
//! (the containment overhead), `deadline_miss` counts misses the audit
//! classifier blames on the *policy*, and `fault_miss` counts the ones it
//! attributes to injected faults. The guaranteed-policy zero-miss check
//! then enforces "faults never turn into policy bugs" mechanically.
//! Mode-churn artifacts (grid label `"mode-churn"`) reinterpret the axes
//! the same way: `u` is the churn probability, `energy_norm` is against
//! the churn-free baseline, and `fault_miss` counts kernel-log audit
//! findings (see `crate::modes`). Regulator-soak artifacts (grid label
//! `"regulator-soak"`) follow suit: `u` is the regulator adversity rate,
//! `energy_norm` is against the regulator-free baseline, `deadline_miss`
//! carries policy-blamed misses plus non-miss audit findings, and
//! `fault_miss` the excused misses (see `crate::regulator`). Clock-soak
//! artifacts (grid label `"clock-soak"`) are the same shape one layer
//! deeper still: `u` is the clock adversity rate (drift/tick-loss/
//! coalescing/backward-jump probabilities), `energy_norm` is against the
//! clean-clock baseline, `deadline_miss` carries policy-blamed misses
//! plus non-miss audit findings, and `fault_miss` the clock-excused
//! misses (see `crate::clock`).
//!
//! The reader is deliberately forward-compatible: it looks fields up by
//! name and ignores object keys it does not know, so an artifact written
//! by a newer producer with extra per-point or per-series fields still
//! loads here (the comparator then only judges the fields both sides
//! speak).
//!
//! Everything except `meta.threads` and `wall_ms` is a pure function of
//! the experiment seed; [`BenchArtifact::canonical_json`] zeroes those two
//! fields, and the determinism suite asserts the canonical form is
//! byte-identical across thread counts. The workspace has no registry
//! dependencies, so the writer and the reader are hand-rolled here.

use core::fmt::Write as _;
use std::fmt;

use crate::sweep::Sweep;

/// Schema identifier emitted into (and required from) every artifact.
pub const SCHEMA: &str = "rtdvs-bench/v1";

/// Policies whose schedulability guarantee makes any deadline miss a bug
/// (the EDF family; RM-based policies legitimately miss above the RM
/// bound).
pub const GUARANTEED_POLICIES: [&str; 4] = ["EDF", "StaticEDF", "ccEDF", "laEDF"];

/// One plotted point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchPoint {
    /// Worst-case utilization (x axis).
    pub u: f64,
    /// Mean energy normalized against plain EDF (y axis). Chaos grids
    /// normalize against the same policy's fault-free run instead.
    pub energy_norm: f64,
    /// Total deadline misses across the point's task sets. Chaos grids
    /// count only misses classified as policy bugs here.
    pub deadline_miss: u64,
    /// Misses attributed to injected faults. Always 0 outside chaos
    /// grids; absent in pre-fault artifacts, which parse as 0.
    pub fault_miss: u64,
}

/// One curve: a policy on one panel.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSeries {
    /// Policy name (a [`rtdvs_core::policy::PolicyKind::name`]).
    pub policy: String,
    /// Tasks per set in this panel (panels distinguish Figures 6/7/8).
    pub n_tasks: usize,
    /// The curve, in utilization-grid order.
    pub points: Vec<BenchPoint>,
}

/// Grid metadata: everything needed to regenerate the artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchGrid {
    /// Human label for the grid ("paper-figures", "sweep-smoke").
    pub label: String,
    /// Panel sizes (tasks per set).
    pub n_tasks: Vec<usize>,
    /// Utilization grid.
    pub utilizations: Vec<f64>,
    /// Task sets averaged per grid point.
    pub sets_per_point: usize,
    /// Simulated horizon per run, milliseconds.
    pub duration_ms: f64,
    /// Policy column order.
    pub policies: Vec<String>,
}

/// A complete benchmark artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArtifact {
    /// Experiment seed every stream derives from.
    pub seed: u64,
    /// Worker threads that produced this artifact (provenance only — the
    /// series are thread-count-invariant).
    pub threads: usize,
    /// The grid that was run.
    pub grid: BenchGrid,
    /// All curves.
    pub series: Vec<BenchSeries>,
    /// Wall-clock of the producing run, milliseconds (provenance only).
    pub wall_ms: u64,
}

impl BenchArtifact {
    /// Builds the series for one sweep panel: every policy's normalized
    /// energy curve plus per-point deadline misses.
    #[must_use]
    pub fn panel_series(sweep: &Sweep, n_tasks: usize) -> Vec<BenchSeries> {
        (0..sweep.policy_names.len())
            .map(|p| BenchSeries {
                policy: sweep.policy_names[p].to_owned(),
                n_tasks,
                points: sweep
                    .rows
                    .iter()
                    .enumerate()
                    .map(|(i, row)| BenchPoint {
                        u: row.utilization,
                        energy_norm: sweep.normalized(i, p),
                        deadline_miss: row.misses[p],
                        fault_miss: 0,
                    })
                    .collect(),
            })
            .collect()
    }

    /// Serializes the artifact.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.render(self.threads, self.wall_ms)
    }

    /// Serializes with `threads` and `wall_ms` zeroed: the deterministic
    /// payload. Two runs of the same grid and seed must produce
    /// byte-identical canonical JSON regardless of thread count.
    #[must_use]
    pub fn canonical_json(&self) -> String {
        self.render(0, 0)
    }

    fn render(&self, threads: usize, wall_ms: u64) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{\n  \"schema\": \"{SCHEMA}\",\n  \"meta\": {{");
        let _ = writeln!(
            s,
            "    \"seed\": {},\n    \"threads\": {threads},",
            self.seed
        );
        let _ = writeln!(s, "    \"grid\": {{");
        let _ = writeln!(s, "      \"label\": \"{}\",", self.grid.label);
        let _ = writeln!(
            s,
            "      \"n_tasks\": {},",
            json_usize_list(&self.grid.n_tasks)
        );
        let _ = writeln!(
            s,
            "      \"utilizations\": {},",
            json_f64_list(&self.grid.utilizations, 4)
        );
        let _ = writeln!(s, "      \"sets_per_point\": {},", self.grid.sets_per_point);
        let _ = writeln!(
            s,
            "      \"duration_ms\": {},",
            fmt_f64(self.grid.duration_ms, 3)
        );
        let _ = writeln!(
            s,
            "      \"policies\": {}",
            json_str_list(&self.grid.policies)
        );
        let _ = writeln!(s, "    }}\n  }},\n  \"series\": [");
        for (i, series) in self.series.iter().enumerate() {
            let _ = writeln!(
                s,
                "    {{\"policy\": \"{}\", \"n_tasks\": {}, \"points\": [",
                series.policy, series.n_tasks
            );
            for (j, p) in series.points.iter().enumerate() {
                let _ = writeln!(
                    s,
                    "      {{\"u\": {}, \"energy_norm\": {}, \"deadline_miss\": {}, \
                     \"fault_miss\": {}}}{}",
                    fmt_f64(p.u, 4),
                    fmt_f64(p.energy_norm, 6),
                    p.deadline_miss,
                    p.fault_miss,
                    if j + 1 < series.points.len() { "," } else { "" }
                );
            }
            let _ = writeln!(
                s,
                "    ]}}{}",
                if i + 1 < self.series.len() { "," } else { "" }
            );
        }
        let _ = writeln!(s, "  ],\n  \"wall_ms\": {wall_ms}\n}}");
        s
    }

    /// Parses an artifact back from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem: malformed
    /// JSON, wrong schema identifier, or a missing/ill-typed field.
    pub fn from_json(text: &str) -> Result<BenchArtifact, ArtifactError> {
        let value = Json::parse(text)?;
        let schema = value.get("schema")?.as_str()?;
        if schema != SCHEMA {
            return Err(ArtifactError(format!(
                "schema mismatch: artifact says {schema:?}, reader speaks {SCHEMA:?}"
            )));
        }
        let meta = value.get("meta")?;
        let grid = meta.get("grid")?;
        Ok(BenchArtifact {
            seed: meta.get("seed")?.as_u64()?,
            threads: meta.get("threads")?.as_u64()? as usize,
            grid: BenchGrid {
                label: grid.get("label")?.as_str()?.to_owned(),
                n_tasks: grid
                    .get("n_tasks")?
                    .as_array()?
                    .iter()
                    .map(|v| Ok(v.as_u64()? as usize))
                    .collect::<Result<_, ArtifactError>>()?,
                utilizations: grid
                    .get("utilizations")?
                    .as_array()?
                    .iter()
                    .map(Json::as_f64)
                    .collect::<Result<_, ArtifactError>>()?,
                sets_per_point: grid.get("sets_per_point")?.as_u64()? as usize,
                duration_ms: grid.get("duration_ms")?.as_f64()?,
                policies: grid
                    .get("policies")?
                    .as_array()?
                    .iter()
                    .map(|v| Ok(v.as_str()?.to_owned()))
                    .collect::<Result<_, ArtifactError>>()?,
            },
            series: value
                .get("series")?
                .as_array()?
                .iter()
                .map(|entry| {
                    Ok(BenchSeries {
                        policy: entry.get("policy")?.as_str()?.to_owned(),
                        n_tasks: entry.get("n_tasks")?.as_u64()? as usize,
                        points: entry
                            .get("points")?
                            .as_array()?
                            .iter()
                            .map(|p| {
                                Ok(BenchPoint {
                                    u: p.get("u")?.as_f64()?,
                                    energy_norm: p.get("energy_norm")?.as_f64()?,
                                    deadline_miss: p.get("deadline_miss")?.as_u64()?,
                                    // Absent in pre-fault artifacts.
                                    fault_miss: match p.get("fault_miss") {
                                        Ok(v) => v.as_u64()?,
                                        Err(_) => 0,
                                    },
                                })
                            })
                            .collect::<Result<_, ArtifactError>>()?,
                    })
                })
                .collect::<Result<_, ArtifactError>>()?,
            wall_ms: value.get("wall_ms")?.as_u64()?,
        })
    }

    /// Structural invariants any well-formed artifact must satisfy,
    /// independent of a golden to compare against: every series covers the
    /// whole utilization grid, plain EDF normalizes to 1, guaranteed
    /// policies never miss, and energies are positive. Returns one message
    /// per violation.
    ///
    /// Chaos-soak and mode-churn grids normalize each policy against its
    /// own fault-free (respectively churn-free) baseline, so the
    /// EDF-normalizes-to-1 check does not apply there; the
    /// guaranteed-policy check does (and, because those artifacts put
    /// only policy-blamed misses in `deadline_miss`, it enforces that no
    /// injected fault or committed mode change was ever misclassified as
    /// a policy bug).
    #[must_use]
    pub fn validate(&self) -> Vec<String> {
        let chaos = matches!(
            self.grid.label.as_str(),
            "chaos-soak" | "mode-churn" | "regulator-soak" | "clock-soak"
        );
        let mut problems = Vec::new();
        let expected_series = self.grid.policies.len() * self.grid.n_tasks.len();
        if self.series.len() != expected_series {
            problems.push(format!(
                "expected {expected_series} series ({} policies × {} panels), found {}",
                self.grid.policies.len(),
                self.grid.n_tasks.len(),
                self.series.len()
            ));
        }
        for series in &self.series {
            let tag = format!("{}/{} tasks", series.policy, series.n_tasks);
            if series.points.len() != self.grid.utilizations.len() {
                problems.push(format!(
                    "{tag}: {} points for a {}-point utilization grid",
                    series.points.len(),
                    self.grid.utilizations.len()
                ));
            }
            for point in &series.points {
                if point.energy_norm <= 0.0 || point.energy_norm.is_nan() {
                    problems.push(format!(
                        "{tag}: non-positive energy {} at U={}",
                        point.energy_norm, point.u
                    ));
                }
                if !chaos && series.policy == "EDF" && (point.energy_norm - 1.0).abs() > 1e-9 {
                    problems.push(format!(
                        "{tag}: EDF normalization is {} at U={}, must be 1",
                        point.energy_norm, point.u
                    ));
                }
                if GUARANTEED_POLICIES.contains(&series.policy.as_str()) && point.deadline_miss != 0
                {
                    problems.push(format!(
                        "{tag}: {} deadline miss(es) at U={} from a policy whose \
                         schedulability guarantee forbids them",
                        point.deadline_miss, point.u
                    ));
                }
            }
        }
        problems
    }
}

/// Compares a fresh artifact against the committed golden: identical grid,
/// every energy within `tolerance` (relative), and deadline-miss counts
/// unchanged. Returns one message per divergence; empty means the run
/// reproduces the golden.
#[must_use]
pub fn compare(golden: &BenchArtifact, fresh: &BenchArtifact, tolerance: f64) -> Vec<String> {
    let mut problems = Vec::new();
    if golden.grid != fresh.grid {
        problems.push(format!(
            "grid mismatch: golden ran {:?}, fresh ran {:?} — regenerate the golden if the \
             grid change is intentional",
            golden.grid.label, fresh.grid.label
        ));
        return problems;
    }
    if golden.seed != fresh.seed {
        problems.push(format!(
            "seed mismatch: golden {} vs fresh {}",
            golden.seed, fresh.seed
        ));
        return problems;
    }
    if golden.series.len() != fresh.series.len() {
        problems.push(format!(
            "series count mismatch: golden {} vs fresh {}",
            golden.series.len(),
            fresh.series.len()
        ));
        return problems;
    }
    for (g, f) in golden.series.iter().zip(&fresh.series) {
        let tag = format!("{}/{} tasks", g.policy, g.n_tasks);
        if g.policy != f.policy || g.n_tasks != f.n_tasks || g.points.len() != f.points.len() {
            problems.push(format!("{tag}: series shape diverged"));
            continue;
        }
        for (gp, fp) in g.points.iter().zip(&f.points) {
            let denom = gp.energy_norm.abs().max(1e-12);
            let rel = (fp.energy_norm - gp.energy_norm).abs() / denom;
            if rel > tolerance {
                problems.push(format!(
                    "{tag} at U={}: energy {} vs golden {} ({:+.2}% > ±{:.2}%)",
                    gp.u,
                    fp.energy_norm,
                    gp.energy_norm,
                    100.0 * (fp.energy_norm - gp.energy_norm) / denom,
                    100.0 * tolerance
                ));
            }
            if fp.deadline_miss != gp.deadline_miss {
                problems.push(format!(
                    "{tag} at U={}: {} deadline miss(es) vs golden {}",
                    gp.u, fp.deadline_miss, gp.deadline_miss
                ));
            }
            if fp.fault_miss != gp.fault_miss {
                problems.push(format!(
                    "{tag} at U={}: {} fault-induced miss(es) vs golden {}",
                    gp.u, fp.fault_miss, gp.fault_miss
                ));
            }
        }
    }
    problems
}

/// A parse or schema error, with the offending path or byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactError(pub String);

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArtifactError {}

/// A parsed JSON value. Numbers keep their source text so 64-bit seeds
/// round-trip without `f64` truncation.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub(crate) fn parse(text: &str) -> Result<Json, ArtifactError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ArtifactError(format!("trailing content at byte {pos}")));
        }
        Ok(value)
    }

    pub(crate) fn get(&self, key: &str) -> Result<&Json, ArtifactError> {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| ArtifactError(format!("missing field {key:?}"))),
            _ => Err(ArtifactError(format!("expected object around {key:?}"))),
        }
    }

    pub(crate) fn as_str(&self) -> Result<&str, ArtifactError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(ArtifactError(format!("expected string, found {other:?}"))),
        }
    }

    pub(crate) fn as_array(&self) -> Result<&[Json], ArtifactError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(ArtifactError(format!("expected array, found {other:?}"))),
        }
    }

    pub(crate) fn as_f64(&self) -> Result<f64, ArtifactError> {
        match self {
            Json::Num(raw) => raw
                .parse::<f64>()
                .map_err(|e| ArtifactError(format!("bad number {raw:?}: {e}"))),
            other => Err(ArtifactError(format!("expected number, found {other:?}"))),
        }
    }

    pub(crate) fn as_u64(&self) -> Result<u64, ArtifactError> {
        match self {
            Json::Num(raw) => raw
                .parse::<u64>()
                .map_err(|e| ArtifactError(format!("bad integer {raw:?}: {e}"))),
            other => Err(ArtifactError(format!("expected integer, found {other:?}"))),
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), ArtifactError> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(ArtifactError(format!(
            "expected {:?} at byte {}",
            byte as char, *pos
        )))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ArtifactError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(ArtifactError(format!("unterminated object at byte {pos}"))),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(ArtifactError(format!("unterminated array at byte {pos}"))),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            if *pos == start {
                return Err(ArtifactError(format!("unexpected byte at {start}")));
            }
            let raw = core::str::from_utf8(&bytes[start..*pos])
                .expect("numeric bytes are ASCII")
                .to_owned();
            Ok(Json::Num(raw))
        }
        None => Err(ArtifactError("unexpected end of input".to_owned())),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ArtifactError> {
    expect(bytes, pos, b'"')?;
    let start = *pos;
    let mut out = String::new();
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                // The writer never escapes anything beyond these; reject
                // the rest rather than decode them wrongly.
                match bytes.get(*pos + 1) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    other => {
                        return Err(ArtifactError(format!(
                            "unsupported escape {other:?} in string at byte {start}"
                        )))
                    }
                }
                *pos += 2;
            }
            byte if byte < 0x80 => {
                out.push(byte as char);
                *pos += 1;
            }
            _ => {
                // Multi-byte UTF-8: copy the full scalar.
                let rest = core::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| ArtifactError(format!("invalid UTF-8 at byte {pos}")))?;
                let ch = rest.chars().next().expect("non-empty by construction");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
    Err(ArtifactError(format!(
        "unterminated string at byte {start}"
    )))
}

/// Fixed-precision float formatting, the writer's one source of float
/// text: deterministic across platforms for the determinism proof.
pub(crate) fn fmt_f64(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

fn json_f64_list(xs: &[f64], decimals: usize) -> String {
    let items: Vec<String> = xs.iter().map(|&x| fmt_f64(x, decimals)).collect();
    format!("[{}]", items.join(", "))
}

fn json_usize_list(xs: &[usize]) -> String {
    let items: Vec<String> = xs.iter().map(usize::to_string).collect();
    format!("[{}]", items.join(", "))
}

fn json_str_list(xs: &[String]) -> String {
    let items: Vec<String> = xs.iter().map(|x| format!("\"{x}\"")).collect();
    format!("[{}]", items.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchArtifact {
        BenchArtifact {
            seed: 0x5eed,
            threads: 4,
            grid: BenchGrid {
                label: "sweep-smoke".to_owned(),
                n_tasks: vec![8],
                utilizations: vec![0.5, 0.9],
                sets_per_point: 2,
                duration_ms: 600.0,
                policies: vec!["EDF".to_owned(), "ccEDF".to_owned()],
            },
            series: vec![
                BenchSeries {
                    policy: "EDF".to_owned(),
                    n_tasks: 8,
                    points: vec![
                        BenchPoint {
                            u: 0.5,
                            energy_norm: 1.0,
                            deadline_miss: 0,
                            fault_miss: 0,
                        },
                        BenchPoint {
                            u: 0.9,
                            energy_norm: 1.0,
                            deadline_miss: 0,
                            fault_miss: 0,
                        },
                    ],
                },
                BenchSeries {
                    policy: "ccEDF".to_owned(),
                    n_tasks: 8,
                    points: vec![
                        BenchPoint {
                            u: 0.5,
                            energy_norm: 0.51,
                            deadline_miss: 0,
                            fault_miss: 0,
                        },
                        BenchPoint {
                            u: 0.9,
                            energy_norm: 0.87,
                            deadline_miss: 0,
                            fault_miss: 0,
                        },
                    ],
                },
            ],
            wall_ms: 321,
        }
    }

    #[test]
    fn json_round_trips() {
        let art = sample();
        let parsed = BenchArtifact::from_json(&art.to_json()).expect("round trip");
        assert_eq!(parsed, art);
    }

    #[test]
    fn large_seed_round_trips_exactly() {
        let mut art = sample();
        art.seed = u64::MAX - 3; // not representable in f64
        let parsed = BenchArtifact::from_json(&art.to_json()).expect("round trip");
        assert_eq!(parsed.seed, u64::MAX - 3);
    }

    #[test]
    fn canonical_json_hides_threads_and_wall() {
        let mut a = sample();
        let mut b = sample();
        a.threads = 1;
        a.wall_ms = 10;
        b.threads = 4;
        b.wall_ms = 99;
        assert_eq!(a.canonical_json(), b.canonical_json());
        assert_ne!(a.to_json(), b.to_json());
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let text = sample().to_json().replace(SCHEMA, "rtdvs-bench/v0");
        let err = BenchArtifact::from_json(&text).expect_err("wrong schema");
        assert!(err.0.contains("schema mismatch"), "{err}");
    }

    #[test]
    fn malformed_json_is_rejected() {
        for bad in ["", "{", "{\"a\" 1}", "[1,", "{\"a\": 1} trailing"] {
            assert!(BenchArtifact::from_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn compare_accepts_identity_and_small_drift() {
        let golden = sample();
        assert!(compare(&golden, &golden, 0.01).is_empty());
        let mut fresh = sample();
        fresh.series[1].points[0].energy_norm *= 1.005;
        assert!(compare(&golden, &fresh, 0.01).is_empty());
    }

    #[test]
    fn compare_rejects_two_percent_energy_delta() {
        let golden = sample();
        let mut fresh = sample();
        fresh.series[1].points[1].energy_norm *= 1.02;
        let problems = compare(&golden, &fresh, 0.01);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("ccEDF"), "{problems:?}");
        assert!(problems[0].contains("U=0.9"), "{problems:?}");
    }

    #[test]
    fn compare_rejects_new_deadline_miss() {
        let golden = sample();
        let mut fresh = sample();
        fresh.series[0].points[0].deadline_miss = 1;
        let problems = compare(&golden, &fresh, 0.01);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("deadline miss"), "{problems:?}");
    }

    #[test]
    fn compare_rejects_grid_drift() {
        let golden = sample();
        let mut fresh = sample();
        fresh.grid.sets_per_point = 3;
        assert!(!compare(&golden, &fresh, 0.01).is_empty());
    }

    #[test]
    fn validate_flags_guarantee_violations() {
        let mut art = sample();
        assert!(art.validate().is_empty());
        art.series[0].points[0].energy_norm = 1.2; // EDF must stay 1.0
        art.series[1].points[0].deadline_miss = 2; // ccEDF must never miss
        let problems = art.validate();
        assert_eq!(problems.len(), 2, "{problems:?}");
    }

    #[test]
    fn validate_flags_missing_series() {
        let mut art = sample();
        art.series.pop();
        assert!(!art.validate().is_empty());
    }

    #[test]
    fn pre_fault_artifacts_parse_with_zero_fault_miss() {
        // Artifacts written before the fault_miss field must still load.
        let text = sample().to_json().replace(", \"fault_miss\": 0", "");
        assert!(!text.contains("fault_miss"));
        let parsed = BenchArtifact::from_json(&text).expect("tolerant parse");
        assert!(parsed
            .series
            .iter()
            .all(|s| s.points.iter().all(|p| p.fault_miss == 0)));
    }

    #[test]
    fn chaos_grids_skip_the_edf_normalization_check_only() {
        let mut art = sample();
        art.grid.label = "chaos-soak".to_owned();
        // Chaos normalizes per-policy, so EDF ≠ 1 is legitimate there...
        art.series[0].points[1].energy_norm = 1.07;
        art.series[0].points[1].fault_miss = 3;
        assert!(art.validate().is_empty(), "{:?}", art.validate());
        // ...but a policy-blamed miss from a guaranteed policy is still a
        // finding.
        art.series[1].points[0].deadline_miss = 1;
        assert_eq!(art.validate().len(), 1);
    }

    #[test]
    fn unknown_fields_are_ignored_at_every_level() {
        // Forward compatibility: a newer producer may add fields at the
        // top level, in meta, in the grid, per series, or per point. The
        // by-name reader must skip them all and still round-trip the
        // fields it knows.
        let art = sample();
        let text = art
            .to_json()
            .replace(
                "\"schema\": \"rtdvs-bench/v1\",",
                "\"schema\": \"rtdvs-bench/v1\",\n  \"producer\": \"future/2.0\",",
            )
            .replace(
                "\"seed\": 24301,",
                "\"seed\": 24301,\n    \"host_arch\": \"riscv64\",",
            )
            .replace(
                "\"label\": \"sweep-smoke\",",
                "\"label\": \"sweep-smoke\",\n      \"cap_point\": 3,",
            )
            .replace(
                "\"policy\": \"ccEDF\",",
                "\"policy\": \"ccEDF\", \"retries\": 17,",
            )
            .replace(
                "\"deadline_miss\": 0, \"fault_miss\": 0}",
                "\"deadline_miss\": 0, \"fault_miss\": 0, \"stuck\": 2, \"note\": null}",
            );
        assert_ne!(text, art.to_json(), "replacements must have applied");
        let parsed = BenchArtifact::from_json(&text).expect("tolerant parse");
        assert_eq!(parsed, art);
    }

    #[test]
    fn clock_soak_label_normalizes_per_policy() {
        // The clock soak normalizes each policy against its own
        // clean-clock baseline, so EDF ≠ 1 is legitimate there while the
        // guaranteed-policy miss check still bites.
        let mut art = sample();
        art.grid.label = "clock-soak".to_owned();
        art.series[0].points[1].energy_norm = 1.02;
        art.series[0].points[1].fault_miss = 5;
        assert!(art.validate().is_empty(), "{:?}", art.validate());
        art.series[1].points[0].deadline_miss = 1;
        assert_eq!(art.validate().len(), 1);
    }

    #[test]
    fn regulator_soak_label_normalizes_per_policy() {
        // The regulator soak normalizes each policy against its own
        // regulator-free baseline, so EDF ≠ 1 is legitimate there while
        // the guaranteed-policy miss check still bites.
        let mut art = sample();
        art.grid.label = "regulator-soak".to_owned();
        art.series[0].points[1].energy_norm = 1.04;
        art.series[0].points[1].fault_miss = 2;
        assert!(art.validate().is_empty(), "{:?}", art.validate());
        art.series[1].points[0].deadline_miss = 1;
        assert_eq!(art.validate().len(), 1);
    }

    #[test]
    fn compare_rejects_fault_miss_drift() {
        let golden = sample();
        let mut fresh = sample();
        fresh.series[1].points[1].fault_miss = 2;
        let problems = compare(&golden, &fresh, 0.01);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("fault-induced"), "{problems:?}");
    }
}
