//! Ablation micro-benchmarks: the cost of the design choices DESIGN.md
//! calls out — the RM schedulability test variants behind static scaling
//! (O(n) Liu–Layland vs the quadratic scheduling-point test vs response
//! time analysis) and the look-ahead deferral computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rtdvs_core::analysis::{rm_feasible_at, static_rm_point, RmTest};
use rtdvs_core::machine::Machine;
use rtdvs_core::policy::LaEdf;
use rtdvs_core::time::Time;
use rtdvs_core::view::{InvState, SystemView, TaskView};
use rtdvs_taskgen::{generate, TaskGenSpec};

fn bench_rm_tests(c: &mut Criterion) {
    let mut group = c.benchmark_group("rm_schedulability");
    for n in [5usize, 20, 80] {
        let spec = TaskGenSpec::new(n, 0.69).unwrap();
        let tasks = generate(&spec, 41).unwrap();
        for test in [
            RmTest::LiuLayland,
            RmTest::SchedulingPoints,
            RmTest::ResponseTime,
        ] {
            group.bench_with_input(BenchmarkId::new(format!("{test:?}"), n), &n, |b, _| {
                b.iter(|| black_box(rm_feasible_at(black_box(&tasks), 0.75, test)));
            });
        }
    }
    group.finish();
}

fn bench_static_point_selection(c: &mut Criterion) {
    let machine = Machine::machine2();
    let spec = TaskGenSpec::new(20, 0.6).unwrap();
    let tasks = generate(&spec, 43).unwrap();
    let mut group = c.benchmark_group("static_rm_point");
    for test in [RmTest::LiuLayland, RmTest::SchedulingPoints] {
        group.bench_function(format!("{test:?}"), |b| {
            b.iter(|| black_box(static_rm_point(&tasks, &machine, test)));
        });
    }
    group.finish();
}

fn bench_la_edf_defer(c: &mut Criterion) {
    let machine = Machine::machine2();
    let mut group = c.benchmark_group("la_edf_defer");
    for n in [5usize, 20, 80] {
        let spec = TaskGenSpec::new(n, 0.7).unwrap();
        let tasks = generate(&spec, 47).unwrap();
        let views: Vec<TaskView> = tasks
            .tasks()
            .iter()
            .map(|t| TaskView {
                invocation: 1,
                state: InvState::Active,
                executed: t.wcet() * 0.3,
                deadline: t.period(),
                next_release: t.period(),
            })
            .collect();
        let mut policy = LaEdf::new();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let sys = SystemView {
                now: Time::from_ms(0.5),
                tasks: &tasks,
                machine: &machine,
                views: &views,
            };
            b.iter(|| black_box(policy.work_due_before_next_deadline(black_box(&sys))));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_rm_tests,
    bench_static_point_selection,
    bench_la_edf_defer
);
criterion_main!(benches);
