//! Ablation micro-benchmarks: the cost of the design choices DESIGN.md
//! calls out — the RM schedulability test variants behind static scaling
//! (O(n) Liu–Layland vs the quadratic scheduling-point test vs response
//! time analysis) and the look-ahead deferral computation.

use rtdvs_bench::microbench::bench;
use rtdvs_core::analysis::{rm_feasible_at, static_rm_point, RmTest};
use rtdvs_core::machine::Machine;
use rtdvs_core::policy::LaEdf;
use rtdvs_core::time::Time;
use rtdvs_core::view::{InvState, SystemView, TaskView};
use rtdvs_taskgen::{generate, TaskGenSpec};

fn bench_rm_tests() {
    for n in [5usize, 20, 80] {
        let spec = TaskGenSpec::new(n, 0.69).expect("valid spec");
        let tasks = generate(&spec, 41).expect("generator succeeds");
        for test in [
            RmTest::LiuLayland,
            RmTest::SchedulingPoints,
            RmTest::ResponseTime,
        ] {
            bench("rm_schedulability", &format!("{test:?}/{n}"), || {
                rm_feasible_at(&tasks, 0.75, test)
            });
        }
    }
}

fn bench_static_point_selection() {
    let machine = Machine::machine2();
    let spec = TaskGenSpec::new(20, 0.6).expect("valid spec");
    let tasks = generate(&spec, 43).expect("generator succeeds");
    for test in [RmTest::LiuLayland, RmTest::SchedulingPoints] {
        bench("static_rm_point", &format!("{test:?}"), || {
            static_rm_point(&tasks, &machine, test)
        });
    }
}

fn bench_la_edf_defer() {
    let machine = Machine::machine2();
    for n in [5usize, 20, 80] {
        let spec = TaskGenSpec::new(n, 0.7).expect("valid spec");
        let tasks = generate(&spec, 47).expect("generator succeeds");
        let views: Vec<TaskView> = tasks
            .tasks()
            .iter()
            .map(|t| TaskView {
                invocation: 1,
                state: InvState::Active,
                executed: t.wcet() * 0.3,
                deadline: t.period(),
                next_release: t.period(),
            })
            .collect();
        let mut policy = LaEdf::new();
        let sys = SystemView {
            now: Time::from_ms(0.5),
            tasks: &tasks,
            machine: &machine,
            views: &views,
        };
        bench("la_edf_defer", &n.to_string(), || {
            policy.work_due_before_next_deadline(&sys)
        });
    }
}

fn main() {
    bench_rm_tests();
    bench_static_point_selection();
    bench_la_edf_defer();
}
