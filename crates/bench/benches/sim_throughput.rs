//! Throughput of the discrete-event engine: simulated milliseconds per
//! wall-clock second for representative workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rtdvs_core::example::table2_task_set;
use rtdvs_core::machine::Machine;
use rtdvs_core::policy::PolicyKind;
use rtdvs_core::time::Time;
use rtdvs_sim::{simulate, ExecModel, SimConfig};
use rtdvs_taskgen::{generate, TaskGenSpec};

fn bench_example_set(c: &mut Criterion) {
    let tasks = table2_task_set();
    let machine = Machine::machine0();
    let cfg = SimConfig::new(Time::from_secs(1.0)).with_exec(ExecModel::uniform());
    let mut group = c.benchmark_group("simulate_1s_example_set");
    for kind in PolicyKind::paper_six() {
        group.bench_function(kind.name(), |b| {
            b.iter(|| black_box(simulate(&tasks, &machine, kind, black_box(&cfg))));
        });
    }
    group.finish();
}

fn bench_task_count_scaling(c: &mut Criterion) {
    let machine = Machine::machine0();
    let cfg = SimConfig::new(Time::from_ms(500.0)).with_exec(ExecModel::ConstantFraction(0.7));
    let mut group = c.benchmark_group("simulate_laEDF_by_task_count");
    for n in [5usize, 10, 20, 40] {
        let spec = TaskGenSpec::new(n, 0.7).unwrap();
        let tasks = generate(&spec, 31).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(simulate(&tasks, &machine, PolicyKind::LaEdf, &cfg)));
        });
    }
    group.finish();
}

fn bench_trace_recording_cost(c: &mut Criterion) {
    let tasks = table2_task_set();
    let machine = Machine::machine0();
    let plain = SimConfig::new(Time::from_secs(1.0)).with_exec(ExecModel::uniform());
    let traced = plain.clone().with_trace();
    let mut group = c.benchmark_group("trace_recording");
    group.bench_function("off", |b| {
        b.iter(|| black_box(simulate(&tasks, &machine, PolicyKind::CcEdf, &plain)));
    });
    group.bench_function("on", |b| {
        b.iter(|| black_box(simulate(&tasks, &machine, PolicyKind::CcEdf, &traced)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_example_set,
    bench_task_count_scaling,
    bench_trace_recording_cost
);
criterion_main!(benches);
