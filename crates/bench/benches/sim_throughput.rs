//! Throughput of the discrete-event engine: simulated milliseconds per
//! wall-clock second for representative workloads.

use rtdvs_bench::microbench::bench;
use rtdvs_core::example::table2_task_set;
use rtdvs_core::machine::Machine;
use rtdvs_core::policy::PolicyKind;
use rtdvs_core::time::Time;
use rtdvs_sim::{simulate, ExecModel, SimConfig};
use rtdvs_taskgen::{generate, TaskGenSpec};

fn bench_example_set() {
    let tasks = table2_task_set();
    let machine = Machine::machine0();
    let cfg = SimConfig::new(Time::from_secs(1.0)).with_exec(ExecModel::uniform());
    for kind in PolicyKind::paper_six() {
        bench("simulate_1s_example_set", kind.name(), || {
            simulate(&tasks, &machine, kind, &cfg)
        });
    }
}

fn bench_task_count_scaling() {
    let machine = Machine::machine0();
    let cfg = SimConfig::new(Time::from_ms(500.0)).with_exec(ExecModel::ConstantFraction(0.7));
    for n in [5usize, 10, 20, 40] {
        let spec = TaskGenSpec::new(n, 0.7).expect("valid spec");
        let tasks = generate(&spec, 31).expect("generator succeeds");
        bench("simulate_laEDF_by_task_count", &n.to_string(), || {
            simulate(&tasks, &machine, PolicyKind::LaEdf, &cfg)
        });
    }
}

fn bench_trace_recording_cost() {
    let tasks = table2_task_set();
    let machine = Machine::machine0();
    let plain = SimConfig::new(Time::from_secs(1.0)).with_exec(ExecModel::uniform());
    let traced = plain.clone().with_trace();
    bench("trace_recording", "off", || {
        simulate(&tasks, &machine, PolicyKind::CcEdf, &plain)
    });
    bench("trace_recording", "on", || {
        simulate(&tasks, &machine, PolicyKind::CcEdf, &traced)
    });
}

fn main() {
    bench_example_set();
    bench_task_count_scaling();
    bench_trace_recording_cost();
}
