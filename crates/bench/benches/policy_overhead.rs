//! Micro-benchmarks for the per-scheduling-point cost of each RT-DVS
//! policy — the paper argues the dynamic schemes "do not require
//! significant processing costs" (§2.6); this measures them.

use rtdvs_bench::microbench::bench;
use rtdvs_core::machine::Machine;
use rtdvs_core::policy::PolicyKind;
use rtdvs_core::task::{TaskId, TaskSet};
use rtdvs_core::time::Time;
use rtdvs_core::view::{InvState, SystemView, TaskView};
use rtdvs_taskgen::{generate, TaskGenSpec};

fn make_views(tasks: &TaskSet) -> Vec<TaskView> {
    tasks
        .tasks()
        .iter()
        .enumerate()
        .map(|(i, t)| TaskView {
            invocation: 1,
            state: if i % 2 == 0 {
                InvState::Active
            } else {
                InvState::Completed
            },
            executed: t.wcet() * 0.4,
            deadline: t.period(),
            next_release: t.period(),
        })
        .collect()
}

fn bench_policies() {
    let machine = Machine::machine2();
    for n in [5usize, 20, 80] {
        let spec = TaskGenSpec::new(n, 0.7).expect("valid spec");
        let tasks = generate(&spec, 17).expect("generator succeeds");
        let views = make_views(&tasks);
        for kind in PolicyKind::paper_six() {
            let mut policy = kind.build();
            policy.init(&tasks, &machine);
            let sys = SystemView {
                now: Time::from_ms(1.0),
                tasks: &tasks,
                machine: &machine,
                views: &views,
            };
            bench("scheduling_point", &format!("{}/{n}", kind.name()), || {
                policy.on_completion(TaskId(0), &sys)
            });
        }
    }
}

fn bench_release_path() {
    let machine = Machine::machine2();
    let spec = TaskGenSpec::new(20, 0.7).expect("valid spec");
    let tasks = generate(&spec, 23).expect("generator succeeds");
    let views = make_views(&tasks);
    for kind in [PolicyKind::CcRm(Default::default()), PolicyKind::LaEdf] {
        let mut policy = kind.build();
        policy.init(&tasks, &machine);
        let sys = SystemView {
            now: Time::from_ms(0.5),
            tasks: &tasks,
            machine: &machine,
            views: &views,
        };
        bench("release_point", kind.name(), || {
            policy.on_release(TaskId(1), &sys)
        });
    }
}

fn bench_view_construction() {
    let spec = TaskGenSpec::new(80, 0.7).expect("valid spec");
    let tasks = generate(&spec, 29).expect("generator succeeds");
    bench("views", "snapshot_80_tasks", || make_views(&tasks));
}

fn main() {
    bench_policies();
    bench_release_path();
    bench_view_construction();
}
