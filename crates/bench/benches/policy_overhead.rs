//! Micro-benchmarks for the per-scheduling-point cost of each RT-DVS
//! policy — the paper argues the dynamic schemes "do not require
//! significant processing costs" (§2.6); this measures them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rtdvs_core::machine::Machine;
use rtdvs_core::policy::PolicyKind;
use rtdvs_core::task::{TaskId, TaskSet};
use rtdvs_core::time::{Time, Work};
use rtdvs_core::view::{InvState, SystemView, TaskView};
use rtdvs_taskgen::{generate, TaskGenSpec};

fn make_views(tasks: &TaskSet) -> Vec<TaskView> {
    tasks
        .tasks()
        .iter()
        .enumerate()
        .map(|(i, t)| TaskView {
            invocation: 1,
            state: if i % 2 == 0 {
                InvState::Active
            } else {
                InvState::Completed
            },
            executed: t.wcet() * 0.4,
            deadline: t.period(),
            next_release: t.period(),
        })
        .collect()
}

fn bench_policies(c: &mut Criterion) {
    let machine = Machine::machine2();
    let mut group = c.benchmark_group("scheduling_point");
    for n in [5usize, 20, 80] {
        let spec = TaskGenSpec::new(n, 0.7).unwrap();
        let tasks = generate(&spec, 17).unwrap();
        let views = make_views(&tasks);
        for kind in PolicyKind::paper_six() {
            let mut policy = kind.build();
            policy.init(&tasks, &machine);
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &n, |b, _| {
                let sys = SystemView {
                    now: Time::from_ms(1.0),
                    tasks: &tasks,
                    machine: &machine,
                    views: &views,
                };
                b.iter(|| black_box(policy.on_completion(TaskId(0), black_box(&sys))));
            });
        }
    }
    group.finish();
}

fn bench_release_path(c: &mut Criterion) {
    let machine = Machine::machine2();
    let spec = TaskGenSpec::new(20, 0.7).unwrap();
    let tasks = generate(&spec, 23).unwrap();
    let views = make_views(&tasks);
    let mut group = c.benchmark_group("release_point");
    for kind in [PolicyKind::CcRm(Default::default()), PolicyKind::LaEdf] {
        let mut policy = kind.build();
        policy.init(&tasks, &machine);
        group.bench_function(kind.name(), |b| {
            let sys = SystemView {
                now: Time::from_ms(0.5),
                tasks: &tasks,
                machine: &machine,
                views: &views,
            };
            b.iter(|| black_box(policy.on_release(TaskId(1), black_box(&sys))));
        });
    }
    group.finish();
}

fn bench_view_construction(c: &mut Criterion) {
    let spec = TaskGenSpec::new(80, 0.7).unwrap();
    let tasks = generate(&spec, 29).unwrap();
    c.bench_function("view_snapshot_80_tasks", |b| {
        b.iter(|| black_box(make_views(black_box(&tasks))));
    });
    let _ = Work::ZERO; // keep the import obviously used
}

criterion_group!(
    benches,
    bench_policies,
    bench_release_path,
    bench_view_construction
);
criterion_main!(benches);
