//! DVS-capable machine descriptions: the discrete frequency/voltage
//! operating points available to the processor.
//!
//! Frequencies are normalized so that the maximum available frequency is
//! 1.0 (task WCETs are specified at this frequency). Energy per unit of
//! work at an operating point scales with the square of its supply voltage
//! (`E ∝ V²`, §2.1 of the paper); the voltage unit is arbitrary but must be
//! consistent within a machine.

use core::fmt;

use crate::time::EPS;

/// Index of an operating point within a [`Machine`] (ascending frequency).
pub type PointIdx = usize;

/// One frequency/voltage pair the processor can run at.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Normalized frequency in `(0, 1]`.
    pub freq: f64,
    /// Supply voltage required at this frequency (arbitrary consistent
    /// unit).
    pub volts: f64,
}

impl OperatingPoint {
    /// Energy dissipated per unit of work executed at this point.
    ///
    /// With `E_cycle ∝ V²` and work measured in maximum-frequency
    /// milliseconds (a fixed number of cycles per unit), the per-work energy
    /// is `V²` in the machine's (arbitrary) energy unit.
    #[inline]
    #[must_use]
    pub fn energy_per_work(&self) -> f64 {
        self.volts * self.volts
    }

    /// Power drawn while executing at this point: cycles retire at rate
    /// `freq`, each costing `V²`.
    #[inline]
    #[must_use]
    pub fn busy_power(&self) -> f64 {
        self.freq * self.energy_per_work()
    }

    /// Power drawn while halted at this point, given the machine's idle
    /// level (ratio of halted-cycle to busy-cycle energy, §3.1).
    #[inline]
    #[must_use]
    pub fn idle_power(&self, idle_level: f64) -> f64 {
        idle_level * self.busy_power()
    }
}

impl fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.2}V)", self.freq, self.volts)
    }
}

/// A DVS-capable machine: its list of operating points, sorted by ascending
/// frequency, with the maximum normalized frequency equal to 1.0.
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    name: String,
    points: Vec<OperatingPoint>,
}

impl Machine {
    /// Creates a machine from `(freq, volts)` pairs.
    ///
    /// Points may be given in any order; they are sorted by frequency.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError`] if there are no points, any frequency is
    /// outside `(0, 1]`, the maximum frequency is not 1.0, frequencies are
    /// not distinct, any voltage is not strictly positive, or voltage is
    /// not non-decreasing in frequency (CMOS needs at least as much voltage
    /// to run faster).
    pub fn new(name: &str, pairs: &[(f64, f64)]) -> Result<Machine, MachineError> {
        if pairs.is_empty() {
            return Err(MachineError::NoPoints);
        }
        let mut points: Vec<OperatingPoint> = pairs
            .iter()
            .map(|&(freq, volts)| OperatingPoint { freq, volts })
            .collect();
        points.sort_by(|a, b| a.freq.total_cmp(&b.freq));
        for p in &points {
            if !p.freq.is_finite() || p.freq <= 0.0 || p.freq > 1.0 + EPS {
                return Err(MachineError::BadFrequency { freq: p.freq });
            }
            if !p.volts.is_finite() || p.volts <= 0.0 {
                return Err(MachineError::BadVoltage { volts: p.volts });
            }
        }
        if (points.last().expect("non-empty").freq - 1.0).abs() > EPS {
            return Err(MachineError::MaxFrequencyNotNormalized {
                max_freq: points.last().expect("non-empty").freq,
            });
        }
        for w in points.windows(2) {
            if (w[1].freq - w[0].freq).abs() <= EPS {
                return Err(MachineError::DuplicateFrequency { freq: w[1].freq });
            }
            if w[1].volts < w[0].volts - EPS {
                return Err(MachineError::VoltageNotMonotonic {
                    freq: w[1].freq,
                    volts: w[1].volts,
                });
            }
        }
        Ok(Machine {
            name: name.to_owned(),
            points,
        })
    }

    /// The paper's "machine 0": `(0.5, 3 V), (0.75, 4 V), (1.0, 5 V)` —
    /// PC-motherboard-like frequency steps, used for most simulations.
    #[must_use]
    pub fn machine0() -> Machine {
        Machine::new("machine 0", &[(0.5, 3.0), (0.75, 4.0), (1.0, 5.0)])
            .expect("machine 0 preset is valid")
    }

    /// The paper's "machine 1": machine 0 plus an extra `(0.83, 4.5 V)`
    /// point near the ccEDF/ccRM crossover.
    #[must_use]
    pub fn machine1() -> Machine {
        Machine::new(
            "machine 1",
            &[(0.5, 3.0), (0.75, 4.0), (0.83, 4.5), (1.0, 5.0)],
        )
        .expect("machine 1 preset is valid")
    }

    /// The paper's "machine 2": an AMD K6 PowerNow!-like ladder with seven
    /// closely spaced points and a narrow voltage range.
    #[must_use]
    pub fn machine2() -> Machine {
        Machine::new(
            "machine 2",
            &[
                (0.36, 1.4),
                (0.55, 1.5),
                (0.64, 1.6),
                (0.73, 1.7),
                (0.82, 1.8),
                (0.91, 1.9),
                (1.0, 2.0),
            ],
        )
        .expect("machine 2 preset is valid")
    }

    /// The machine's name (for reports).
    #[inline]
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All operating points, ascending by frequency.
    #[inline]
    #[must_use]
    pub fn points(&self) -> &[OperatingPoint] {
        &self.points
    }

    /// Number of operating points.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always `false`: machines have at least one point by construction.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The operating point at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[inline]
    #[must_use]
    pub fn point(&self, idx: PointIdx) -> OperatingPoint {
        self.points[idx]
    }

    /// Index of the lowest-frequency point.
    #[inline]
    #[must_use]
    pub fn lowest(&self) -> PointIdx {
        0
    }

    /// Index of the highest-frequency (maximum, normalized 1.0) point.
    #[inline]
    #[must_use]
    pub fn highest(&self) -> PointIdx {
        self.points.len() - 1
    }

    /// The lowest point whose frequency is at least `required` (within
    /// [`EPS`] tolerance), or the highest point if `required` exceeds the
    /// maximum frequency.
    ///
    /// This is the `select frequency` primitive shared by every RT-DVS
    /// algorithm in the paper: "use lowest frequency f_i such that ...".
    /// Saturating at the maximum keeps the system running as fast as the
    /// hardware allows when the demand is (transiently) infeasible.
    #[must_use]
    pub fn point_at_least(&self, required: f64) -> PointIdx {
        self.points
            .iter()
            .position(|p| p.freq + EPS >= required)
            .unwrap_or(self.highest())
    }

    /// The lowest point satisfying `pred`, or `None`.
    pub fn lowest_point_where(
        &self,
        mut pred: impl FnMut(OperatingPoint) -> bool,
    ) -> Option<PointIdx> {
        self.points.iter().position(|&p| pred(p))
    }
}

impl fmt::Display for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:", self.name)?;
        for p in &self.points {
            write!(f, " {p}")?;
        }
        Ok(())
    }
}

/// Errors constructing a [`Machine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MachineError {
    /// No operating points were given.
    NoPoints,
    /// A frequency was outside `(0, 1]` or not finite.
    BadFrequency {
        /// The offending frequency.
        freq: f64,
    },
    /// A voltage was not strictly positive or not finite.
    BadVoltage {
        /// The offending voltage.
        volts: f64,
    },
    /// The fastest point's frequency is not 1.0, so task WCETs (specified
    /// at maximum frequency) would be ill-defined.
    MaxFrequencyNotNormalized {
        /// The actual maximum frequency.
        max_freq: f64,
    },
    /// Two points share a frequency.
    DuplicateFrequency {
        /// The duplicated frequency.
        freq: f64,
    },
    /// Voltage decreases as frequency increases.
    VoltageNotMonotonic {
        /// Frequency at which the violation occurs.
        freq: f64,
        /// The out-of-order voltage.
        volts: f64,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::NoPoints => write!(f, "machine needs at least one operating point"),
            MachineError::BadFrequency { freq } => {
                write!(f, "frequency {freq} outside the normalized range (0, 1]")
            }
            MachineError::BadVoltage { volts } => {
                write!(f, "voltage {volts} must be strictly positive")
            }
            MachineError::MaxFrequencyNotNormalized { max_freq } => write!(
                f,
                "maximum frequency must be normalized to 1.0, got {max_freq}"
            ),
            MachineError::DuplicateFrequency { freq } => {
                write!(f, "duplicate operating frequency {freq}")
            }
            MachineError::VoltageNotMonotonic { freq, volts } => write!(
                f,
                "voltage {volts} at frequency {freq} is lower than at a slower point"
            ),
        }
    }
}

impl std::error::Error for MachineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid_and_sorted() {
        for m in [
            Machine::machine0(),
            Machine::machine1(),
            Machine::machine2(),
        ] {
            assert!(m.points().windows(2).all(|w| w[0].freq < w[1].freq));
            assert_eq!(m.point(m.highest()).freq, 1.0);
        }
        assert_eq!(Machine::machine0().len(), 3);
        assert_eq!(Machine::machine1().len(), 4);
        assert_eq!(Machine::machine2().len(), 7);
    }

    #[test]
    fn energy_model_matches_paper_units() {
        // Machine 0 voltages 3/4/5 → per-work energies 9/16/25.
        let m = Machine::machine0();
        let e: Vec<f64> = m
            .points()
            .iter()
            .map(OperatingPoint::energy_per_work)
            .collect();
        assert_eq!(e, vec![9.0, 16.0, 25.0]);
        // Busy power folds in the frequency.
        assert_eq!(m.point(0).busy_power(), 4.5);
        assert_eq!(m.point(2).busy_power(), 25.0);
        // Idle power scales with the idle level.
        assert_eq!(m.point(0).idle_power(0.5), 2.25);
        assert_eq!(m.point(0).idle_power(0.0), 0.0);
    }

    #[test]
    fn point_at_least_picks_lowest_sufficient() {
        let m = Machine::machine0();
        assert_eq!(m.point_at_least(0.0), 0);
        assert_eq!(m.point_at_least(0.4), 0);
        assert_eq!(m.point_at_least(0.5), 0);
        assert_eq!(m.point_at_least(0.51), 1);
        assert_eq!(m.point_at_least(0.75), 1);
        assert_eq!(m.point_at_least(0.76), 2);
        assert_eq!(m.point_at_least(1.0), 2);
        // Demand beyond the hardware saturates at the maximum point.
        assert_eq!(m.point_at_least(1.3), 2);
    }

    #[test]
    fn point_at_least_tolerates_float_noise() {
        let m = Machine::machine0();
        // A value infinitesimally above 0.75 still selects 0.75.
        assert_eq!(m.point_at_least(0.75 + f64::EPSILON), 1);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let m = Machine::new("m", &[(1.0, 5.0), (0.5, 3.0)]).expect("valid machine");
        assert_eq!(m.point(0).freq, 0.5);
        assert_eq!(m.point(1).freq, 1.0);
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(
            Machine::new("m", &[]),
            Err(MachineError::NoPoints)
        ));
        assert!(matches!(
            Machine::new("m", &[(0.0, 1.0), (1.0, 2.0)]),
            Err(MachineError::BadFrequency { .. })
        ));
        assert!(matches!(
            Machine::new("m", &[(0.5, -1.0), (1.0, 2.0)]),
            Err(MachineError::BadVoltage { .. })
        ));
        assert!(matches!(
            Machine::new("m", &[(0.5, 1.0), (0.9, 2.0)]),
            Err(MachineError::MaxFrequencyNotNormalized { .. })
        ));
        assert!(matches!(
            Machine::new("m", &[(0.5, 1.0), (0.5, 1.5), (1.0, 2.0)]),
            Err(MachineError::DuplicateFrequency { .. })
        ));
        assert!(matches!(
            Machine::new("m", &[(0.5, 3.0), (1.0, 2.0)]),
            Err(MachineError::VoltageNotMonotonic { .. })
        ));
    }

    #[test]
    fn lowest_point_where_finds_first_match() {
        let m = Machine::machine2();
        let idx = m
            .lowest_point_where(|p| p.volts >= 1.7)
            .expect("a point qualifies");
        assert_eq!(m.point(idx).freq, 0.73);
        assert!(m.lowest_point_where(|p| p.volts > 99.0).is_none());
    }

    #[test]
    fn display_is_informative() {
        let s = Machine::machine0().to_string();
        assert!(s.contains("machine 0"));
        assert!(s.contains("0.500"));
    }
}
