//! O(1) priority-bitmap ready queue for the execution engines.
//!
//! The dispatch loops in `rtdvs-sim` and `rtdvs-kernel` used to rebuild a
//! `Vec<(TaskId, Time)>` of ready tasks at every scheduling point and scan
//! it linearly. This structure replaces both with word-level bitmaps:
//!
//! * **RM** — priorities are static (period, then id), so ranks are
//!   precomputed once and the ready set is a bitmap *in rank space*; the
//!   pick is the first set bit (`trailing_zeros`).
//! * **EDF** — absolute deadlines are bucketed into a circular array of
//!   [`NUM_BUCKETS`] deadline buckets (each `2^shift` ticks wide, sized so
//!   the whole window covers twice the longest period); an occupied-bucket
//!   bitmap finds the earliest non-empty bucket from the current instant in
//!   O(1), and the exact `(deadline, id)` order is resolved *inside* that
//!   bucket with `total_cmp` — the same tiebreak [`SchedulerKind::compare`]
//!   uses, so picks are bit-for-bit identical to the old linear scan.
//!
//! Deadlines that fall outside the bucket window (possible in the kernel
//! after elastic period stretching) go to a `far` overflow set resolved by
//! exact comparison; deadlines at or before the cursor are clamped into the
//! cursor bucket, which keeps the circular order correct because an
//! overdue deadline is by definition the minimum. Both fallbacks preserve
//! exactness; only speed degrades, and only for the rare members involved.
//!
//! Every operation is total (no indexing, no unwrap): out-of-range ids are
//! ignored, which keeps the structure off the panic surface of the engines'
//! zero-panic-budget scheduling loops.

use crate::sched::SchedulerKind;
use crate::task::TaskId;
use crate::time::Time;

/// Discrete ticks per millisecond used to bucket deadlines and timer
/// expiries (`2^10`, i.e. one tick is ~0.98 µs). Quantization only routes
/// values to buckets; ordering decisions always compare the exact times.
pub const TICKS_PER_MS: f64 = 1024.0;

/// Number of EDF deadline buckets (a power of two).
pub const NUM_BUCKETS: usize = 256;

const WORD_BITS: usize = 64;

/// Converts an instant to its bucket/wheel tick. Total: negative times
/// map to tick 0 and `+inf`/huge times saturate at `u64::MAX`.
#[must_use]
pub fn tick_of(t: Time) -> u64 {
    (t.as_ms() * TICKS_PER_MS).floor() as u64
}

#[inline]
fn word_index(bit: usize) -> (usize, u64) {
    (bit / WORD_BITS, 1u64 << (bit % WORD_BITS))
}

/// Iterates the set bits of a word slice in ascending bit order.
fn for_each_set_bit(words: &[u64], mut f: impl FnMut(usize)) {
    for (w, &word) in words.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            f(w * WORD_BITS + b);
            bits &= bits - 1;
        }
    }
}

/// The bitmap ready queue. See the module docs for the layout.
#[derive(Debug, Clone, Default)]
pub struct ReadyQueue {
    /// Capacity in tasks.
    n: usize,
    /// Words per task-id bitmap (`ceil(n / 64)`).
    words: usize,
    /// log2 of the bucket width in ticks.
    shift: u32,
    /// Membership bitmap in task-id space (the ready set).
    in_q: Vec<u64>,
    /// Occupied-bucket bitmap (`NUM_BUCKETS` bits).
    occ: Vec<u64>,
    /// Per-bucket member bitmaps, `NUM_BUCKETS × words`.
    bucket_bits: Vec<u64>,
    /// Which bucket each member occupies.
    bucket_of: Vec<u32>,
    /// Exact absolute deadline per member (valid only while in the queue).
    deadline: Vec<Time>,
    /// Members whose deadline fell outside the bucket window.
    far: Vec<u64>,
    /// Static RM rank per id (`rank_of[id]`) and its inverse.
    rank_of: Vec<u32>,
    id_of_rank: Vec<u32>,
    /// Ready bitmap in RM rank space.
    rm_bits: Vec<u64>,
}

impl ReadyQueue {
    /// Creates an empty queue with zero capacity; call
    /// [`ReadyQueue::configure`] before use.
    #[must_use]
    pub fn new() -> ReadyQueue {
        ReadyQueue::default()
    }

    /// (Re)configures the queue for `n` tasks whose deadlines never lie
    /// more than `span` past the pick instant, with RM priority order
    /// `rm_order` (task ids sorted by `(period, id)`). Clears all members.
    /// Reuses existing allocations when capacities suffice.
    pub fn configure(&mut self, n: usize, span: Time, rm_order: &[TaskId]) {
        self.n = n;
        self.words = n.div_ceil(WORD_BITS).max(1);
        // Bucket width: smallest power of two such that NUM_BUCKETS
        // buckets cover twice the span plus slack, so a deadline inserted
        // `span` ahead of a cursor that then advances stays in-window.
        let span_ticks = tick_of(span).saturating_add(2);
        let need = span_ticks
            .saturating_mul(2)
            .saturating_add(WORD_BITS as u64);
        let mut shift = 0u32;
        while shift < 48 && ((NUM_BUCKETS as u64) << shift) < need {
            shift += 1;
        }
        self.shift = shift;
        let occ_words = NUM_BUCKETS / WORD_BITS;
        self.in_q.clear();
        self.in_q.resize(self.words, 0);
        self.occ.clear();
        self.occ.resize(occ_words, 0);
        self.bucket_bits.clear();
        self.bucket_bits.resize(NUM_BUCKETS * self.words, 0);
        self.bucket_of.clear();
        self.bucket_of.resize(n, 0);
        self.deadline.clear();
        self.deadline.resize(n, Time::ZERO);
        self.far.clear();
        self.far.resize(self.words, 0);
        self.rank_of.clear();
        self.rank_of.resize(n, u32::MAX);
        self.id_of_rank.clear();
        self.id_of_rank.resize(n, u32::MAX);
        for (rank, id) in rm_order.iter().enumerate() {
            if let Some(r) = self.rank_of.get_mut(id.0) {
                *r = rank as u32;
            }
            if let Some(s) = self.id_of_rank.get_mut(rank) {
                *s = id.0 as u32;
            }
        }
        self.rm_bits.clear();
        self.rm_bits.resize(self.words, 0);
    }

    /// `true` if no task is ready.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.in_q.iter().all(|&w| w == 0)
    }

    /// `true` if `id` is in the ready set.
    #[must_use]
    pub fn contains(&self, id: TaskId) -> bool {
        let (w, m) = word_index(id.0);
        self.in_q.get(w).is_some_and(|&word| word & m != 0)
    }

    /// Inserts (or repositions) `id` with absolute `deadline`, bucketing
    /// relative to the pick instant's tick `now_tick`.
    pub fn insert(&mut self, id: TaskId, deadline: Time, now_tick: u64) {
        if id.0 >= self.n {
            return;
        }
        if self.contains(id) {
            self.remove(id);
        }
        let (w, m) = word_index(id.0);
        if let Some(word) = self.in_q.get_mut(w) {
            *word |= m;
        }
        if let Some(d) = self.deadline.get_mut(id.0) {
            *d = deadline;
        }
        if let Some(r) = self.rank_of.get(id.0) {
            let (rw, rm) = word_index(*r as usize);
            if let Some(word) = self.rm_bits.get_mut(rw) {
                *word |= rm;
            }
        }
        // Bucket placement: clamp overdue deadlines into the cursor bucket
        // (they are the minimum, and exact comparison inside the bucket
        // keeps their relative order); send out-of-window deadlines to the
        // far set.
        let dtick = tick_of(deadline).max(now_tick);
        let window = (NUM_BUCKETS as u64) << self.shift;
        if dtick - now_tick >= window {
            if let Some(word) = self.far.get_mut(w) {
                *word |= m;
            }
            if let Some(b) = self.bucket_of.get_mut(id.0) {
                *b = u32::MAX;
            }
            return;
        }
        let bucket = ((dtick >> self.shift) as usize) & (NUM_BUCKETS - 1);
        if let Some(b) = self.bucket_of.get_mut(id.0) {
            *b = bucket as u32;
        }
        if let Some(word) = self.bucket_bits.get_mut(bucket * self.words + w) {
            *word |= m;
        }
        let (ow, om) = word_index(bucket);
        if let Some(word) = self.occ.get_mut(ow) {
            *word |= om;
        }
    }

    /// Removes `id` from the ready set (no-op if absent).
    pub fn remove(&mut self, id: TaskId) {
        if !self.contains(id) {
            return;
        }
        let (w, m) = word_index(id.0);
        if let Some(word) = self.in_q.get_mut(w) {
            *word &= !m;
        }
        if let Some(r) = self.rank_of.get(id.0) {
            let (rw, rm) = word_index(*r as usize);
            if let Some(word) = self.rm_bits.get_mut(rw) {
                *word &= !rm;
            }
        }
        let bucket = self.bucket_of.get(id.0).copied().unwrap_or(u32::MAX);
        if bucket == u32::MAX {
            if let Some(word) = self.far.get_mut(w) {
                *word &= !m;
            }
            return;
        }
        let bucket = bucket as usize;
        let base = bucket * self.words;
        if let Some(word) = self.bucket_bits.get_mut(base + w) {
            *word &= !m;
        }
        let empty = self
            .bucket_bits
            .get(base..base + self.words)
            .is_some_and(|ws| ws.iter().all(|&x| x == 0));
        if empty {
            let (ow, om) = word_index(bucket);
            if let Some(word) = self.occ.get_mut(ow) {
                *word &= !om;
            }
        }
    }

    /// Removes every member (cost proportional to the members present).
    pub fn clear(&mut self) {
        let mut ids: [u64; 4] = [0; 4];
        // Snapshot small id sets on the stack; larger sets fall back to a
        // word-by-word sweep.
        if self.words <= ids.len() {
            for (i, w) in self.in_q.iter().enumerate() {
                if let Some(s) = ids.get_mut(i) {
                    *s = *w;
                }
            }
            for (w, &word) in ids.iter().enumerate().take(self.words) {
                let mut bits = word;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    self.remove(TaskId(w * WORD_BITS + b));
                    bits &= bits - 1;
                }
            }
        } else {
            for id in 0..self.n {
                self.remove(TaskId(id));
            }
        }
    }

    /// Picks the highest-priority ready task under `kind` at the instant
    /// whose tick is `now_tick`. Identical to
    /// [`SchedulerKind::pick_next`] over the same ready set.
    #[must_use]
    pub fn pick(&self, kind: SchedulerKind, now_tick: u64) -> Option<TaskId> {
        match kind {
            SchedulerKind::Edf => self.pick_edf(now_tick),
            SchedulerKind::Rm => self.pick_rm(),
        }
    }

    /// Like [`ReadyQueue::pick`], but skipping tasks for which `banned`
    /// returns `true`. Falls back to an exact linear scan over members —
    /// masking is the rare containment path; exactness matters more than
    /// speed there.
    #[must_use]
    pub fn pick_masked(
        &self,
        kind: SchedulerKind,
        banned: impl Fn(TaskId) -> bool,
    ) -> Option<TaskId> {
        match kind {
            SchedulerKind::Edf => {
                let mut best: Option<(Time, TaskId)> = None;
                for_each_set_bit(&self.in_q, |id| {
                    let id = TaskId(id);
                    if banned(id) {
                        return;
                    }
                    let d = self.deadline.get(id.0).copied().unwrap_or(Time::ZERO);
                    let better = match best {
                        None => true,
                        Some((bd, _)) => d.total_cmp(&bd) == core::cmp::Ordering::Less,
                    };
                    if better {
                        best = Some((d, id));
                    }
                });
                best.map(|(_, id)| id)
            }
            SchedulerKind::Rm => {
                let mut found = None;
                for_each_set_bit(&self.rm_bits, |rank| {
                    if found.is_some() {
                        return;
                    }
                    let id = self.id_of_rank.get(rank).copied().unwrap_or(u32::MAX);
                    if id != u32::MAX && !banned(TaskId(id as usize)) {
                        found = Some(TaskId(id as usize));
                    }
                });
                found
            }
        }
    }

    /// `true` if any ready task is not banned.
    #[must_use]
    pub fn any_unmasked(&self, banned: impl Fn(TaskId) -> bool) -> bool {
        let mut any = false;
        for_each_set_bit(&self.in_q, |id| {
            if !any && !banned(TaskId(id)) {
                any = true;
            }
        });
        any
    }

    /// First set bit in rank space → task id: the RM pick.
    fn pick_rm(&self) -> Option<TaskId> {
        for (w, &word) in self.rm_bits.iter().enumerate() {
            if word != 0 {
                let rank = w * WORD_BITS + word.trailing_zeros() as usize;
                let id = self.id_of_rank.get(rank).copied().unwrap_or(u32::MAX);
                if id != u32::MAX {
                    return Some(TaskId(id as usize));
                }
            }
        }
        None
    }

    /// Earliest-deadline pick: first occupied bucket circularly from the
    /// cursor, exact `(deadline, id)` min inside it, compared against the
    /// far set when non-empty.
    fn pick_edf(&self, now_tick: u64) -> Option<TaskId> {
        let cursor = ((now_tick >> self.shift) as usize) & (NUM_BUCKETS - 1);
        let bucket = self.first_occupied_from(cursor);
        let mut best: Option<(Time, TaskId)> = None;
        if let Some(bucket) = bucket {
            let base = bucket * self.words;
            if let Some(ws) = self.bucket_bits.get(base..base + self.words) {
                for_each_set_bit(ws, |id| {
                    let d = self.deadline.get(id).copied().unwrap_or(Time::ZERO);
                    let better = match best {
                        None => true,
                        Some((bd, _)) => d.total_cmp(&bd) == core::cmp::Ordering::Less,
                    };
                    if better {
                        best = Some((d, TaskId(id)));
                    }
                });
            }
        }
        if self.far.iter().any(|&w| w != 0) {
            for_each_set_bit(&self.far, |id| {
                let d = self.deadline.get(id).copied().unwrap_or(Time::ZERO);
                let better = match best {
                    None => true,
                    Some((bd, bid)) => {
                        d.total_cmp(&bd).then(TaskId(id).cmp(&bid)) == core::cmp::Ordering::Less
                    }
                };
                if better {
                    best = Some((d, TaskId(id)));
                }
            });
        }
        best.map(|(_, id)| id)
    }

    /// First occupied bucket at or circularly after `cursor`.
    fn first_occupied_from(&self, cursor: usize) -> Option<usize> {
        let occ_words = self.occ.len();
        if occ_words == 0 {
            return None;
        }
        let (cw, cb) = (cursor / WORD_BITS, cursor % WORD_BITS);
        // Tail of the cursor word, then the following words, wrapping.
        let masked = self.occ.get(cw).copied().unwrap_or(0) & (u64::MAX << cb);
        if masked != 0 {
            return Some(cw * WORD_BITS + masked.trailing_zeros() as usize);
        }
        for step in 1..=occ_words {
            let w = (cw + step) % occ_words;
            let mut word = self.occ.get(w).copied().unwrap_or(0);
            if w == cw {
                // Wrapped back to the cursor word: only bits before the
                // cursor remain unexamined.
                word &= !(u64::MAX << cb);
            }
            if word != 0 {
                return Some(w * WORD_BITS + word.trailing_zeros() as usize);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskSet;

    /// RM order helper used by the engines: ids sorted by (period, id).
    fn rm_order(tasks: &TaskSet) -> Vec<TaskId> {
        let mut ids: Vec<TaskId> = (0..tasks.len()).map(TaskId).collect();
        ids.sort_by(|&a, &b| {
            tasks
                .task(a)
                .period()
                .total_cmp(&tasks.task(b).period())
                .then(a.cmp(&b))
        });
        ids
    }

    fn queue_for(tasks: &TaskSet, span_ms: f64) -> ReadyQueue {
        let mut q = ReadyQueue::new();
        q.configure(tasks.len(), Time::from_ms(span_ms), &rm_order(tasks));
        q
    }

    #[test]
    fn edf_pick_matches_linear_scan() {
        let tasks = TaskSet::from_ms_pairs(&[(8.0, 3.0), (10.0, 3.0), (14.0, 1.0)]).unwrap();
        let mut q = queue_for(&tasks, 14.0);
        let now = Time::from_ms(2.0);
        let ready = [
            (TaskId(0), Time::from_ms(16.0)),
            (TaskId(1), Time::from_ms(10.0)),
            (TaskId(2), Time::from_ms(14.0)),
        ];
        for (id, d) in ready {
            q.insert(id, d, tick_of(now));
        }
        assert_eq!(
            q.pick(SchedulerKind::Edf, tick_of(now)),
            SchedulerKind::Edf.pick_next(&tasks, &ready)
        );
        assert_eq!(
            q.pick(SchedulerKind::Rm, tick_of(now)),
            SchedulerKind::Rm.pick_next(&tasks, &ready)
        );
    }

    #[test]
    fn ties_break_by_id_in_both_orders() {
        let tasks = TaskSet::from_ms_pairs(&[(10.0, 1.0), (10.0, 1.0)]).unwrap();
        let mut q = queue_for(&tasks, 10.0);
        q.insert(TaskId(1), Time::from_ms(10.0), 0);
        q.insert(TaskId(0), Time::from_ms(10.0), 0);
        assert_eq!(q.pick(SchedulerKind::Edf, 0), Some(TaskId(0)));
        assert_eq!(q.pick(SchedulerKind::Rm, 0), Some(TaskId(0)));
    }

    #[test]
    fn empty_queue_picks_none() {
        let tasks = TaskSet::from_ms_pairs(&[(8.0, 1.0)]).unwrap();
        let q = queue_for(&tasks, 8.0);
        assert!(q.is_empty());
        assert_eq!(q.pick(SchedulerKind::Edf, 0), None);
        assert_eq!(q.pick(SchedulerKind::Rm, 0), None);
    }

    #[test]
    fn empty_buckets_are_skipped() {
        // Two members far apart in bucket space; removing the earlier one
        // must make the occupied-bucket scan skip to the later one.
        let tasks = TaskSet::from_ms_pairs(&[(100.0, 1.0), (120.0, 1.0)]).unwrap();
        let mut q = queue_for(&tasks, 120.0);
        q.insert(TaskId(0), Time::from_ms(5.0), 0);
        q.insert(TaskId(1), Time::from_ms(110.0), 0);
        assert_eq!(q.pick(SchedulerKind::Edf, 0), Some(TaskId(0)));
        q.remove(TaskId(0));
        assert_eq!(q.pick(SchedulerKind::Edf, 0), Some(TaskId(1)));
        q.remove(TaskId(1));
        assert_eq!(q.pick(SchedulerKind::Edf, 0), None);
    }

    #[test]
    fn circular_window_survives_cursor_advance() {
        let tasks = TaskSet::from_ms_pairs(&[(50.0, 1.0), (50.0, 1.0)]).unwrap();
        let mut q = queue_for(&tasks, 50.0);
        // Walk the cursor across several full windows; at each step the
        // pick must equal the exact minimum.
        for step in 0..2000u64 {
            let now = Time::from_ms(step as f64 * 0.7);
            let nt = tick_of(now);
            q.insert(TaskId(0), now + Time::from_ms(49.0), nt);
            q.insert(TaskId(1), now + Time::from_ms(3.0), nt);
            assert_eq!(q.pick(SchedulerKind::Edf, nt), Some(TaskId(1)));
            q.remove(TaskId(1));
            assert_eq!(q.pick(SchedulerKind::Edf, nt), Some(TaskId(0)));
            q.clear();
            assert!(q.is_empty());
        }
    }

    #[test]
    fn overdue_deadlines_clamp_into_cursor_bucket() {
        let tasks = TaskSet::from_ms_pairs(&[(10.0, 1.0), (10.0, 1.0)]).unwrap();
        let mut q = queue_for(&tasks, 10.0);
        let now = Time::from_ms(500.0);
        let nt = tick_of(now);
        // A deadline already in the past must still win over a future one.
        q.insert(TaskId(1), Time::from_ms(499.0), nt);
        q.insert(TaskId(0), now + Time::from_ms(5.0), nt);
        assert_eq!(q.pick(SchedulerKind::Edf, nt), Some(TaskId(1)));
    }

    #[test]
    fn far_deadlines_fall_back_to_exact_comparison() {
        let tasks = TaskSet::from_ms_pairs(&[(10.0, 1.0), (10.0, 1.0)]).unwrap();
        let mut q = queue_for(&tasks, 10.0);
        // Window is ~20 ms; a deadline 10 s out lands in the far set.
        q.insert(TaskId(0), Time::from_ms(10_000.0), 0);
        assert_eq!(q.pick(SchedulerKind::Edf, 0), Some(TaskId(0)));
        q.insert(TaskId(1), Time::from_ms(4.0), 0);
        assert_eq!(q.pick(SchedulerKind::Edf, 0), Some(TaskId(1)));
        q.remove(TaskId(1));
        assert_eq!(q.pick(SchedulerKind::Edf, 0), Some(TaskId(0)));
    }

    #[test]
    fn masked_pick_matches_retain_semantics() {
        let tasks =
            TaskSet::from_ms_pairs(&[(8.0, 1.0), (10.0, 1.0), (14.0, 1.0), (16.0, 1.0)]).unwrap();
        let mut q = queue_for(&tasks, 16.0);
        let ready = [
            (TaskId(0), Time::from_ms(8.0)),
            (TaskId(1), Time::from_ms(6.0)),
            (TaskId(2), Time::from_ms(14.0)),
            (TaskId(3), Time::from_ms(5.0)),
        ];
        for (id, d) in ready {
            q.insert(id, d, 0);
        }
        let banned = [false, true, false, true];
        let is_banned = |id: TaskId| banned.get(id.0).copied().unwrap_or(false);
        // Old path: retain the unbanned, then pick_next.
        let kept: Vec<(TaskId, Time)> = ready
            .iter()
            .copied()
            .filter(|(id, _)| !is_banned(*id))
            .collect();
        for kind in [SchedulerKind::Edf, SchedulerKind::Rm] {
            assert_eq!(
                q.pick_masked(kind, is_banned),
                kind.pick_next(&tasks, &kept),
                "{kind:?}"
            );
        }
        assert!(q.any_unmasked(is_banned));
        assert!(!q.any_unmasked(|_| true));
    }

    #[test]
    fn thousands_of_tasks_multi_word_bitmaps() {
        // Exercises multi-word id bitmaps (n >> 64) and dense same-bucket
        // occupancy: all deadlines equal, so the pick must be TaskId(0),
        // and after removing it TaskId(1), etc.
        let n = 1500;
        let pairs: Vec<(f64, f64)> = (0..n).map(|_| (1000.0, 0.1)).collect();
        let tasks = TaskSet::from_ms_pairs(&pairs).unwrap();
        let mut q = queue_for(&tasks, 1000.0);
        let d = Time::from_ms(1000.0);
        for i in 0..n {
            q.insert(TaskId(i), d, 0);
        }
        for i in 0..50 {
            assert_eq!(q.pick(SchedulerKind::Edf, 0), Some(TaskId(i)));
            assert_eq!(q.pick(SchedulerKind::Rm, 0), Some(TaskId(i)));
            q.remove(TaskId(i));
        }
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn reinsert_repositions_a_member() {
        let tasks = TaskSet::from_ms_pairs(&[(10.0, 1.0), (12.0, 1.0)]).unwrap();
        let mut q = queue_for(&tasks, 12.0);
        q.insert(TaskId(0), Time::from_ms(10.0), 0);
        q.insert(TaskId(1), Time::from_ms(11.0), 0);
        assert_eq!(q.pick(SchedulerKind::Edf, 0), Some(TaskId(0)));
        // SkipRelease-style deadline push: T0 moves behind T1.
        q.insert(TaskId(0), Time::from_ms(20.0), 0);
        assert_eq!(q.pick(SchedulerKind::Edf, 0), Some(TaskId(1)));
    }
}
