//! Time and work quantities used throughout the RT-DVS stack.
//!
//! The paper's worked examples contain exact thirds (running 2 ms of work at
//! speed 0.75 takes 8/3 ms), which no fixed-radix integer clock can
//! represent, so — like the paper's own C++ simulator — all quantities are
//! `f64` with an explicit comparison epsilon ([`EPS`]).
//!
//! Two distinct dimensions are kept apart by newtypes:
//!
//! * [`Time`] — an instant or duration, in milliseconds.
//! * [`Work`] — an amount of computation, in milliseconds of execution at
//!   the *maximum* processor frequency (i.e. normalized cycles).
//!
//! With the maximum frequency normalized to 1.0, one millisecond of wall
//! time at full speed retires exactly one millisecond of work; at normalized
//! frequency `f` it retires `f` milliseconds of work.

use core::cmp::Ordering;
use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Comparison epsilon, in milliseconds (and work-milliseconds).
///
/// Simulated horizons are at most a few minutes (~10^5 ms) and individual
/// arithmetic steps lose at most a few ulps, so 10^-6 ms (one nanosecond)
/// separates genuinely distinct scheduling events by many orders of
/// magnitude while absorbing float round-off.
pub const EPS: f64 = 1e-6;

/// Returns `true` if two raw millisecond values are equal within [`EPS`].
#[inline]
#[must_use]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS
}

/// An instant or duration in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Time(f64);

/// An amount of computation, in milliseconds of execution at the maximum
/// processor frequency.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Work(f64);

impl Time {
    /// The zero instant.
    pub const ZERO: Time = Time(0.0);

    /// Creates a time value from milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is not finite.
    #[inline]
    #[must_use]
    pub fn from_ms(ms: f64) -> Time {
        assert!(ms.is_finite(), "non-finite time: {ms}");
        Time(ms)
    }

    /// Creates a time value from seconds.
    #[inline]
    #[must_use]
    pub fn from_secs(s: f64) -> Time {
        Time::from_ms(s * 1e3)
    }

    /// Creates a time value from microseconds.
    #[inline]
    #[must_use]
    pub fn from_us(us: f64) -> Time {
        Time::from_ms(us * 1e-3)
    }

    /// Returns the value in milliseconds.
    #[inline]
    #[must_use]
    pub fn as_ms(self) -> f64 {
        self.0
    }

    /// Returns the value in seconds.
    #[inline]
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0 * 1e-3
    }

    /// Returns `true` if `self` equals `other` within [`EPS`].
    #[inline]
    #[must_use]
    pub fn approx_eq(self, other: Time) -> bool {
        approx_eq(self.0, other.0)
    }

    /// Returns `true` if `self` is earlier than `other` by more than [`EPS`].
    #[inline]
    #[must_use]
    pub fn definitely_before(self, other: Time) -> bool {
        self.0 < other.0 - EPS
    }

    /// Returns `true` if `self <= other + EPS` (at-or-before, tolerantly).
    #[inline]
    #[must_use]
    pub fn at_or_before(self, other: Time) -> bool {
        self.0 <= other.0 + EPS
    }

    /// Returns the smaller of two times.
    #[inline]
    #[must_use]
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }

    /// Returns the larger of two times.
    #[inline]
    #[must_use]
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// The work retired over this duration at normalized frequency `freq`.
    #[inline]
    #[must_use]
    pub fn work_at(self, freq: f64) -> Work {
        Work(self.0 * freq)
    }

    /// Total ordering treating the value as a raw f64 (no NaN can occur by
    /// construction).
    #[inline]
    #[must_use]
    pub fn total_cmp(&self, other: &Time) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Work {
    /// No work.
    pub const ZERO: Work = Work(0.0);

    /// Creates a work value from milliseconds-at-maximum-frequency.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is not finite.
    #[inline]
    #[must_use]
    pub fn from_ms(ms: f64) -> Work {
        assert!(ms.is_finite(), "non-finite work: {ms}");
        Work(ms)
    }

    /// Returns the value in milliseconds-at-maximum-frequency.
    #[inline]
    #[must_use]
    pub fn as_ms(self) -> f64 {
        self.0
    }

    /// Returns `true` if `self` equals `other` within [`EPS`].
    #[inline]
    #[must_use]
    pub fn approx_eq(self, other: Work) -> bool {
        approx_eq(self.0, other.0)
    }

    /// Returns `true` if there is more than [`EPS`] of work here.
    #[inline]
    #[must_use]
    pub fn is_positive(self) -> bool {
        self.0 > EPS
    }

    /// Returns the smaller of two work amounts.
    #[inline]
    #[must_use]
    pub fn min(self, other: Work) -> Work {
        Work(self.0.min(other.0))
    }

    /// Returns the larger of two work amounts.
    #[inline]
    #[must_use]
    pub fn max(self, other: Work) -> Work {
        Work(self.0.max(other.0))
    }

    /// Clamps negative values (from float round-off) to zero.
    #[inline]
    #[must_use]
    pub fn clamp_non_negative(self) -> Work {
        Work(self.0.max(0.0))
    }

    /// The wall-clock duration needed to retire this work at normalized
    /// frequency `freq`.
    ///
    /// # Panics
    ///
    /// Panics if `freq` is not strictly positive.
    #[inline]
    #[must_use]
    pub fn duration_at(self, freq: f64) -> Time {
        assert!(freq > 0.0, "non-positive frequency: {freq}");
        Time(self.0 / freq)
    }

    /// This work as a fraction of a period: the task's utilization
    /// contribution.
    #[inline]
    #[must_use]
    pub fn utilization_over(self, period: Time) -> f64 {
        self.0 / period.as_ms()
    }

    /// Total ordering treating the value as a raw f64.
    #[inline]
    #[must_use]
    pub fn total_cmp(&self, other: &Work) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}ms", self.0)
    }
}

impl fmt::Display for Work {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}mc", self.0)
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: f64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Div<f64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: f64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Div for Time {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Time) -> f64 {
        self.0 / rhs.0
    }
}

impl Neg for Time {
    type Output = Time;
    #[inline]
    fn neg(self) -> Time {
        Time(-self.0)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        Time(iter.map(|t| t.0).sum())
    }
}

impl Add for Work {
    type Output = Work;
    #[inline]
    fn add(self, rhs: Work) -> Work {
        Work(self.0 + rhs.0)
    }
}

impl Sub for Work {
    type Output = Work;
    #[inline]
    fn sub(self, rhs: Work) -> Work {
        Work(self.0 - rhs.0)
    }
}

impl AddAssign for Work {
    #[inline]
    fn add_assign(&mut self, rhs: Work) {
        self.0 += rhs.0;
    }
}

impl SubAssign for Work {
    #[inline]
    fn sub_assign(&mut self, rhs: Work) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Work {
    type Output = Work;
    #[inline]
    fn mul(self, rhs: f64) -> Work {
        Work(self.0 * rhs)
    }
}

impl Div<f64> for Work {
    type Output = Work;
    #[inline]
    fn div(self, rhs: f64) -> Work {
        Work(self.0 / rhs)
    }
}

impl Div for Work {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Work) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Work {
    fn sum<I: Iterator<Item = Work>>(iter: I) -> Work {
        Work(iter.map(|w| w.0).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_roundtrips_units() {
        assert_eq!(Time::from_secs(1.5).as_ms(), 1500.0);
        assert_eq!(Time::from_us(500.0).as_ms(), 0.5);
        assert_eq!(Time::from_ms(250.0).as_secs(), 0.25);
    }

    #[test]
    fn time_arithmetic() {
        let a = Time::from_ms(10.0);
        let b = Time::from_ms(4.0);
        assert_eq!((a + b).as_ms(), 14.0);
        assert_eq!((a - b).as_ms(), 6.0);
        assert_eq!((a * 0.5).as_ms(), 5.0);
        assert_eq!((a / 2.0).as_ms(), 5.0);
        assert_eq!(a / b, 2.5);
        assert_eq!((-b).as_ms(), -4.0);
    }

    #[test]
    fn work_time_conversions() {
        // 2 ms of work at speed 0.75 takes 8/3 ms of wall time.
        let w = Work::from_ms(2.0);
        let t = w.duration_at(0.75);
        assert!((t.as_ms() - 8.0 / 3.0).abs() < 1e-12);
        // And that wall time at 0.75 retires the work again.
        assert!(t.work_at(0.75).approx_eq(w));
    }

    #[test]
    fn utilization() {
        let w = Work::from_ms(3.0);
        assert_eq!(w.utilization_over(Time::from_ms(8.0)), 0.375);
    }

    #[test]
    fn approx_comparisons() {
        let a = Time::from_ms(1.0);
        let b = Time::from_ms(1.0 + EPS / 2.0);
        assert!(a.approx_eq(b));
        assert!(!a.definitely_before(b));
        assert!(a.at_or_before(b));
        let c = Time::from_ms(1.1);
        assert!(a.definitely_before(c));
        assert!(!c.at_or_before(a));
    }

    #[test]
    fn clamp_non_negative() {
        assert_eq!(Work::from_ms(-1e-18).clamp_non_negative(), Work::ZERO);
        assert_eq!(Work::from_ms(2.0).clamp_non_negative().as_ms(), 2.0);
    }

    #[test]
    fn sums() {
        let times = [1.0, 2.0, 3.5].map(Time::from_ms);
        assert_eq!(times.into_iter().sum::<Time>().as_ms(), 6.5);
        let works = [1.0, 0.25].map(Work::from_ms);
        assert_eq!(works.into_iter().sum::<Work>().as_ms(), 1.25);
    }

    #[test]
    #[should_panic(expected = "non-finite time")]
    fn rejects_nan_time() {
        let _ = Time::from_ms(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "non-positive frequency")]
    fn rejects_zero_frequency() {
        let _ = Work::from_ms(1.0).duration_at(0.0);
    }

    #[test]
    fn min_max() {
        let a = Time::from_ms(1.0);
        let b = Time::from_ms(2.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        let w = Work::from_ms(1.0);
        let v = Work::from_ms(2.0);
        assert_eq!(w.max(v), v);
        assert_eq!(w.min(v), w);
    }
}
