//! The paper's running example: the task set of Table 2 with the actual
//! per-invocation computation times of Table 3.
//!
//! Every worked figure (Figs. 2, 3, 5, 7) and Table 4 use this data, so it
//! is provided as a shared fixture for tests, examples, and the experiment
//! drivers.

use crate::task::TaskSet;
use crate::time::Work;

/// Table 2: periods and worst-case computation times (ms at maximum
/// frequency) — T1 = (8, 3), T2 = (10, 3), T3 = (14, 1).
#[must_use]
pub fn table2_task_set() -> TaskSet {
    TaskSet::from_ms_pairs(&[(8.0, 3.0), (10.0, 3.0), (14.0, 1.0)])
        .expect("the paper's example task set is valid")
}

/// Table 3: actual computation requirements for the first two invocations
/// of each task, `actual[task][invocation]` in ms at maximum frequency.
///
/// T1 uses (2, 1), T2 uses (1, 1), T3 uses (1, 1). The paper's examples run
/// for 16 ms, during which each task is invoked exactly twice.
#[must_use]
pub fn table3_actual_times() -> Vec<Vec<Work>> {
    vec![
        vec![Work::from_ms(2.0), Work::from_ms(1.0)],
        vec![Work::from_ms(1.0), Work::from_ms(1.0)],
        vec![Work::from_ms(1.0), Work::from_ms(1.0)],
    ]
}

/// The horizon over which the paper's examples (and Table 4) are evaluated.
pub const EXAMPLE_HORIZON_MS: f64 = 16.0;

/// Table 4: the paper's normalized energy results for the example, keyed by
/// the policy names used in this crate.
#[must_use]
pub fn table4_expected() -> Vec<(&'static str, f64)> {
    vec![
        ("EDF", 1.0),
        ("StaticRM", 1.0),
        ("StaticEDF", 0.64),
        ("ccEDF", 0.52),
        ("ccRM", 0.71),
        ("laEDF", 0.44),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper() {
        let set = table2_task_set();
        assert_eq!(set.len(), 3);
        assert_eq!(set.task(crate::task::TaskId(0)).period().as_ms(), 8.0);
        assert_eq!(set.task(crate::task::TaskId(2)).wcet().as_ms(), 1.0);
        assert!((set.total_utilization() - 0.746_428_571).abs() < 1e-6);
    }

    #[test]
    fn table3_fits_within_wcet() {
        let set = table2_task_set();
        for (task, times) in set.tasks().iter().zip(table3_actual_times()) {
            for w in times {
                assert!(w.as_ms() <= task.wcet().as_ms());
            }
        }
    }

    #[test]
    fn two_invocations_cover_the_horizon() {
        let set = table2_task_set();
        for task in set.tasks() {
            let invocations = (EXAMPLE_HORIZON_MS / task.period().as_ms()).ceil() as usize;
            assert_eq!(invocations, 2);
        }
    }
}
