//! Preemptive priority rules for the two classical real-time schedulers the
//! paper builds on: Earliest-Deadline-First and Rate-Monotonic (§2.2).
//!
//! The actual dispatch loop lives in the execution engines (`rtdvs-sim`,
//! `rtdvs-kernel`); this module only defines the priority order so that
//! every engine resolves ties identically (by [`TaskId`], which keeps runs
//! deterministic and reproducible).

use core::cmp::Ordering;

use crate::task::{TaskId, TaskSet};
use crate::time::Time;

/// Which real-time scheduler a policy pairs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Earliest-Deadline-First: dynamic priority by absolute deadline.
    Edf,
    /// Rate-Monotonic: static priority by period (shorter period first).
    Rm,
}

impl SchedulerKind {
    /// Short lower-case name for reports ("edf" / "rm").
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SchedulerKind::Edf => "edf",
            SchedulerKind::Rm => "rm",
        }
    }

    /// Compares two ready tasks; `Ordering::Less` means `a` runs first.
    ///
    /// * EDF: earlier absolute deadline wins, ties by id.
    /// * RM: shorter period wins, ties by id (deadlines are ignored).
    #[must_use]
    pub fn compare(self, tasks: &TaskSet, a: (TaskId, Time), b: (TaskId, Time)) -> Ordering {
        match self {
            SchedulerKind::Edf => a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)),
            SchedulerKind::Rm => tasks
                .task(a.0)
                .period()
                .total_cmp(&tasks.task(b.0).period())
                .then(a.0.cmp(&b.0)),
        }
    }

    /// Picks the highest-priority task among `ready`, where each entry is
    /// `(task, absolute deadline of its current invocation)`.
    ///
    /// Returns `None` if `ready` is empty.
    #[must_use]
    pub fn pick_next(self, tasks: &TaskSet, ready: &[(TaskId, Time)]) -> Option<TaskId> {
        ready
            .iter()
            .copied()
            .min_by(|&a, &b| self.compare(tasks, a, b))
            .map(|(id, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_set() -> TaskSet {
        TaskSet::from_ms_pairs(&[(8.0, 3.0), (10.0, 3.0), (14.0, 1.0)]).expect("valid task set")
    }

    #[test]
    fn edf_prefers_earliest_deadline() {
        let set = paper_set();
        let ready = vec![
            (TaskId(0), Time::from_ms(16.0)),
            (TaskId(1), Time::from_ms(10.0)),
            (TaskId(2), Time::from_ms(14.0)),
        ];
        assert_eq!(SchedulerKind::Edf.pick_next(&set, &ready), Some(TaskId(1)));
    }

    #[test]
    fn rm_prefers_shortest_period_regardless_of_deadline() {
        let set = paper_set();
        // T1 has the shortest period even though its deadline here is latest.
        let ready = vec![
            (TaskId(0), Time::from_ms(24.0)),
            (TaskId(1), Time::from_ms(10.0)),
            (TaskId(2), Time::from_ms(14.0)),
        ];
        assert_eq!(SchedulerKind::Rm.pick_next(&set, &ready), Some(TaskId(0)));
    }

    #[test]
    fn ties_break_by_id() {
        let set = TaskSet::from_ms_pairs(&[(10.0, 1.0), (10.0, 1.0)]).expect("valid task set");
        let ready = vec![
            (TaskId(1), Time::from_ms(10.0)),
            (TaskId(0), Time::from_ms(10.0)),
        ];
        assert_eq!(SchedulerKind::Edf.pick_next(&set, &ready), Some(TaskId(0)));
        assert_eq!(SchedulerKind::Rm.pick_next(&set, &ready), Some(TaskId(0)));
    }

    #[test]
    fn empty_ready_queue() {
        let set = paper_set();
        assert_eq!(SchedulerKind::Edf.pick_next(&set, &[]), None);
        assert_eq!(SchedulerKind::Rm.pick_next(&set, &[]), None);
    }

    #[test]
    fn names() {
        assert_eq!(SchedulerKind::Edf.as_str(), "edf");
        assert_eq!(SchedulerKind::Rm.as_str(), "rm");
    }
}
