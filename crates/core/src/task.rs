//! The periodic hard-real-time task model of the paper (§2.2).
//!
//! Each task `T_i` has a period `P_i` and a worst-case computation time
//! `C_i` specified at the maximum processor frequency. The task is released
//! once every `P_i`, must finish by the end of its period (deadline equals
//! period), tasks are independent, and scheduling overheads are folded into
//! `C_i`.

use core::fmt;

use crate::time::{Time, Work, EPS};

/// Identifier of a task within a [`TaskSet`]: its index in the set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub usize);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0 + 1)
    }
}

/// A periodic real-time task: period, worst-case execution time, and an
/// optional release offset (phase).
///
/// The offset is zero in the paper's model (synchronous release at time 0);
/// it is provided as an extension and defaults to zero everywhere.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Task {
    period: Time,
    wcet: Work,
    offset: Time,
}

impl Task {
    /// Creates a task with the given period and worst-case execution time
    /// (both in the units of [`Time`]/[`Work`]: milliseconds) and zero
    /// release offset.
    ///
    /// # Errors
    ///
    /// Returns [`TaskError`] if the period is not strictly positive, the
    /// WCET is not strictly positive, or the WCET exceeds the period (such a
    /// task can never meet its deadline even alone at full speed).
    pub fn new(period: Time, wcet: Work) -> Result<Task, TaskError> {
        Task::with_offset(period, wcet, Time::ZERO)
    }

    /// Creates a task with an explicit release offset.
    ///
    /// # Errors
    ///
    /// Same as [`Task::new`]; additionally the offset must be non-negative.
    pub fn with_offset(period: Time, wcet: Work, offset: Time) -> Result<Task, TaskError> {
        if period.as_ms() <= EPS {
            return Err(TaskError::NonPositivePeriod { period });
        }
        if wcet.as_ms() <= 0.0 {
            return Err(TaskError::NonPositiveWcet { wcet });
        }
        if wcet.as_ms() > period.as_ms() + EPS {
            return Err(TaskError::WcetExceedsPeriod { wcet, period });
        }
        if offset.as_ms() < 0.0 {
            return Err(TaskError::NegativeOffset { offset });
        }
        Ok(Task {
            period,
            wcet,
            offset,
        })
    }

    /// Convenience constructor from raw milliseconds.
    ///
    /// # Errors
    ///
    /// Same as [`Task::new`].
    pub fn from_ms(period_ms: f64, wcet_ms: f64) -> Result<Task, TaskError> {
        Task::new(Time::from_ms(period_ms), Work::from_ms(wcet_ms))
    }

    /// The task's period (and relative deadline).
    #[inline]
    #[must_use]
    pub fn period(&self) -> Time {
        self.period
    }

    /// The worst-case execution time at maximum frequency.
    #[inline]
    #[must_use]
    pub fn wcet(&self) -> Work {
        self.wcet
    }

    /// The release offset (zero in the paper's synchronous model).
    #[inline]
    #[must_use]
    pub fn offset(&self) -> Time {
        self.offset
    }

    /// Worst-case utilization `C_i / P_i` at maximum frequency.
    #[inline]
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.wcet.utilization_over(self.period)
    }

    /// The release time of invocation `k` (0-based).
    #[inline]
    #[must_use]
    pub fn release_time(&self, k: u64) -> Time {
        self.offset + self.period * k as f64
    }

    /// The absolute deadline of invocation `k` (0-based): its next release.
    #[inline]
    #[must_use]
    pub fn deadline(&self, k: u64) -> Time {
        self.release_time(k) + self.period
    }

    /// Returns this task with its WCET increased by `extra`.
    ///
    /// §2.5/§4.1: each invocation causes at most two voltage/frequency
    /// switches, so hardware transition stalls "can be accounted for, and
    /// added to, the worst-case task computation times" — this is that
    /// accounting step (`extra` = 2 × the worst-case stall).
    ///
    /// # Errors
    ///
    /// Returns [`TaskError::WcetExceedsPeriod`] if the inflated WCET no
    /// longer fits in the period (the task cannot tolerate the overhead).
    pub fn with_inflated_wcet(&self, extra: Work) -> Result<Task, TaskError> {
        Task::with_offset(self.period, self.wcet + extra, self.offset)
    }
}

/// Errors constructing a [`Task`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TaskError {
    /// The period was zero or negative.
    NonPositivePeriod {
        /// The offending period.
        period: Time,
    },
    /// The WCET was zero or negative.
    NonPositiveWcet {
        /// The offending WCET.
        wcet: Work,
    },
    /// The WCET was larger than the period.
    WcetExceedsPeriod {
        /// The offending WCET.
        wcet: Work,
        /// The period it exceeds.
        period: Time,
    },
    /// The release offset was negative.
    NegativeOffset {
        /// The offending offset.
        offset: Time,
    },
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskError::NonPositivePeriod { period } => {
                write!(f, "task period must be positive, got {period}")
            }
            TaskError::NonPositiveWcet { wcet } => {
                write!(f, "task WCET must be positive, got {wcet}")
            }
            TaskError::WcetExceedsPeriod { wcet, period } => {
                write!(f, "task WCET {wcet} exceeds its period {period}")
            }
            TaskError::NegativeOffset { offset } => {
                write!(f, "task offset must be non-negative, got {offset}")
            }
        }
    }
}

impl std::error::Error for TaskError {}

/// An immutable set of periodic tasks.
///
/// Task identity is positional: [`TaskId`] `i` refers to the `i`-th task
/// passed at construction. The set pre-computes the RM priority order
/// (ascending period, ties broken by index) used by the RM scheduler and
/// the RM schedulability tests.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSet {
    tasks: Vec<Task>,
    rm_order: Vec<TaskId>,
}

impl TaskSet {
    /// Creates a task set from its tasks.
    ///
    /// # Errors
    ///
    /// Returns [`TaskSetError::Empty`] for an empty set.
    pub fn new(tasks: Vec<Task>) -> Result<TaskSet, TaskSetError> {
        if tasks.is_empty() {
            return Err(TaskSetError::Empty);
        }
        let mut rm_order: Vec<TaskId> = (0..tasks.len()).map(TaskId).collect();
        rm_order.sort_by(|a, b| {
            tasks[a.0]
                .period()
                .total_cmp(&tasks[b.0].period())
                .then(a.0.cmp(&b.0))
        });
        Ok(TaskSet { tasks, rm_order })
    }

    /// Convenience constructor from `(period_ms, wcet_ms)` pairs.
    ///
    /// # Errors
    ///
    /// Returns an error if any pair is invalid ([`TaskSetError::Task`]) or
    /// the list is empty ([`TaskSetError::Empty`]).
    pub fn from_ms_pairs(pairs: &[(f64, f64)]) -> Result<TaskSet, TaskSetError> {
        let tasks = pairs
            .iter()
            .enumerate()
            .map(|(i, &(p, c))| {
                Task::from_ms(p, c).map_err(|source| TaskSetError::Task {
                    id: TaskId(i),
                    source,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        TaskSet::new(tasks)
    }

    /// Number of tasks.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Returns `true` if the set has no tasks (never true by construction).
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The task with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range for this set.
    #[inline]
    #[must_use]
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0]
    }

    /// All tasks, in id order.
    #[inline]
    #[must_use]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Iterates `(TaskId, &Task)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &Task)> {
        self.tasks.iter().enumerate().map(|(i, t)| (TaskId(i), t))
    }

    /// Task ids in RM priority order: ascending period, ties by id.
    #[inline]
    #[must_use]
    pub fn rm_order(&self) -> &[TaskId] {
        &self.rm_order
    }

    /// Total worst-case utilization `Σ C_i / P_i` at maximum frequency.
    #[must_use]
    pub fn total_utilization(&self) -> f64 {
        self.tasks.iter().map(Task::utilization).sum()
    }

    /// The maximum release offset (zero for the paper's synchronous model).
    #[must_use]
    pub fn max_offset(&self) -> Time {
        self.tasks
            .iter()
            .map(Task::offset)
            .fold(Time::ZERO, Time::max)
    }

    /// Returns a copy of this set with every WCET increased by `extra` —
    /// the bulk version of [`Task::with_inflated_wcet`], used to charge
    /// voltage-switch stalls to the task bounds before admission.
    ///
    /// # Errors
    ///
    /// Returns [`TaskSetError::Task`] naming the first task whose inflated
    /// WCET exceeds its period.
    pub fn with_inflated_wcets(&self, extra: Work) -> Result<TaskSet, TaskSetError> {
        let tasks = self
            .iter()
            .map(|(id, t)| {
                t.with_inflated_wcet(extra)
                    .map_err(|source| TaskSetError::Task { id, source })
            })
            .collect::<Result<Vec<_>, _>>()?;
        TaskSet::new(tasks)
    }

    /// Returns a copy of this set with one task appended (used by the
    /// kernel's dynamic task arrival path).
    ///
    /// # Errors
    ///
    /// Never fails for a non-empty base set; the signature mirrors
    /// [`TaskSet::new`].
    pub fn with_task(&self, task: Task) -> Result<TaskSet, TaskSetError> {
        let mut tasks = self.tasks.clone();
        tasks.push(task);
        TaskSet::new(tasks)
    }
}

/// Errors constructing a [`TaskSet`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TaskSetError {
    /// The set contained no tasks.
    Empty,
    /// A task description was invalid.
    Task {
        /// Position of the bad task.
        id: TaskId,
        /// The underlying error.
        source: TaskError,
    },
}

impl fmt::Display for TaskSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskSetError::Empty => write!(f, "task set must contain at least one task"),
            TaskSetError::Task { id, source } => write!(f, "invalid task {id}: {source}"),
        }
    }
}

impl std::error::Error for TaskSetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TaskSetError::Empty => None,
            TaskSetError::Task { source, .. } => Some(source),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_set() -> TaskSet {
        TaskSet::from_ms_pairs(&[(8.0, 3.0), (10.0, 3.0), (14.0, 1.0)]).expect("valid task set")
    }

    #[test]
    fn task_accessors() {
        let t = Task::from_ms(8.0, 3.0).expect("valid task");
        assert_eq!(t.period().as_ms(), 8.0);
        assert_eq!(t.wcet().as_ms(), 3.0);
        assert_eq!(t.offset(), Time::ZERO);
        assert_eq!(t.utilization(), 0.375);
    }

    #[test]
    fn task_release_and_deadline() {
        let t = Task::from_ms(8.0, 3.0).expect("valid task");
        assert_eq!(t.release_time(0).as_ms(), 0.0);
        assert_eq!(t.release_time(2).as_ms(), 16.0);
        assert_eq!(t.deadline(0).as_ms(), 8.0);
        assert_eq!(t.deadline(2).as_ms(), 24.0);
    }

    #[test]
    fn offset_shifts_releases() {
        let t = Task::with_offset(Time::from_ms(10.0), Work::from_ms(2.0), Time::from_ms(3.0))
            .expect("valid task");
        assert_eq!(t.release_time(0).as_ms(), 3.0);
        assert_eq!(t.deadline(1).as_ms(), 23.0);
    }

    #[test]
    fn rejects_invalid_tasks() {
        assert!(matches!(
            Task::from_ms(0.0, 1.0),
            Err(TaskError::NonPositivePeriod { .. })
        ));
        assert!(matches!(
            Task::from_ms(5.0, 0.0),
            Err(TaskError::NonPositiveWcet { .. })
        ));
        assert!(matches!(
            Task::from_ms(5.0, 6.0),
            Err(TaskError::WcetExceedsPeriod { .. })
        ));
        assert!(matches!(
            Task::with_offset(Time::from_ms(5.0), Work::from_ms(1.0), Time::from_ms(-1.0)),
            Err(TaskError::NegativeOffset { .. })
        ));
    }

    #[test]
    fn wcet_equal_to_period_is_allowed() {
        assert!(Task::from_ms(5.0, 5.0).is_ok());
    }

    #[test]
    fn empty_set_rejected() {
        assert!(matches!(TaskSet::new(vec![]), Err(TaskSetError::Empty)));
    }

    #[test]
    fn paper_set_utilization() {
        // 3/8 + 3/10 + 1/14 = 0.746 (the value printed in Fig. 3).
        let u = paper_set().total_utilization();
        assert!((u - 0.746_428_571_428_571_4).abs() < 1e-12);
    }

    #[test]
    fn rm_order_sorts_by_period_then_id() {
        let set = TaskSet::from_ms_pairs(&[(10.0, 1.0), (8.0, 1.0), (10.0, 2.0), (5.0, 1.0)])
            .expect("valid task set");
        let order: Vec<usize> = set.rm_order().iter().map(|id| id.0).collect();
        assert_eq!(order, vec![3, 1, 0, 2]);
    }

    #[test]
    fn with_task_appends() {
        let set = paper_set();
        let bigger = set
            .with_task(Task::from_ms(20.0, 1.0).expect("valid task"))
            .expect("still schedulable");
        assert_eq!(bigger.len(), 4);
        assert_eq!(bigger.task(TaskId(3)).period().as_ms(), 20.0);
        // RM order puts the new long-period task last.
        assert_eq!(*bigger.rm_order().last().expect("non-empty set"), TaskId(3));
    }

    #[test]
    fn bad_pair_reports_position() {
        let err = TaskSet::from_ms_pairs(&[(8.0, 3.0), (5.0, 9.0)]).unwrap_err();
        assert!(matches!(
            err,
            TaskSetError::Task {
                id: TaskId(1),
                source: TaskError::WcetExceedsPeriod { .. }
            }
        ));
    }

    #[test]
    fn wcet_inflation() {
        let t = Task::from_ms(10.0, 3.0).expect("valid task");
        let inflated = t
            .with_inflated_wcet(Work::from_ms(0.8))
            .expect("inflation fits the period");
        assert_eq!(inflated.wcet().as_ms(), 3.8);
        assert_eq!(inflated.period().as_ms(), 10.0);
        // Inflation past the period is rejected.
        assert!(matches!(
            t.with_inflated_wcet(Work::from_ms(8.0)),
            Err(TaskError::WcetExceedsPeriod { .. })
        ));
    }

    #[test]
    fn set_wcet_inflation() {
        let set = paper_set();
        let inflated = set
            .with_inflated_wcets(Work::from_ms(0.5))
            .expect("inflation fits the periods");
        assert_eq!(inflated.task(TaskId(0)).wcet().as_ms(), 3.5);
        assert_eq!(inflated.task(TaskId(2)).wcet().as_ms(), 1.5);
        // A set with a task near its period cannot absorb large stalls;
        // the error names the offending task.
        let tight = TaskSet::from_ms_pairs(&[(8.0, 3.0), (2.0, 1.9)]).expect("valid task set");
        let err = tight.with_inflated_wcets(Work::from_ms(0.5)).unwrap_err();
        assert!(matches!(err, TaskSetError::Task { id: TaskId(1), .. }));
    }

    #[test]
    fn display_formats() {
        assert_eq!(TaskId(0).to_string(), "T1");
        let err = TaskSet::from_ms_pairs(&[(5.0, 9.0)]).unwrap_err();
        assert!(err.to_string().contains("T1"));
    }
}
