//! Tenant identity and per-tenant serving quotas.
//!
//! The paper's aperiodic-server treatment (§2.2, footnote 1) is
//! single-stream: one FIFO queue shares the whole server budget. A
//! million-user serving scenario needs a tenant dimension — every request
//! belongs to a [`TenantId`], and each tenant holds a [`TenantQuota`]: the
//! slice of the server's per-period budget that is guaranteed to that
//! tenant, plus a backlog bound that caps how much latency debt the tenant
//! may accumulate before old requests are shed.

use core::fmt;

use crate::time::Work;

/// Identifies one tenant of a multi-tenant aperiodic server.
///
/// A plain 64-bit id: stable across checkpoints, cheap to copy, ordered so
/// dispatch and reporting can iterate tenants deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(u64);

impl TenantId {
    /// Creates a tenant id from its raw number.
    #[must_use]
    pub fn from_raw(id: u64) -> TenantId {
        TenantId(id)
    }

    /// The raw number.
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// One tenant's reservation on a multi-tenant aperiodic server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantQuota {
    /// The tenant this reservation belongs to.
    pub tenant: TenantId,
    /// Guaranteed CPU budget per server period. Replenished to this value
    /// at every server release; the sum over all tenants must fit in the
    /// server's admitted budget for the guarantee to mean anything.
    pub quota: Work,
    /// Maximum queued (not yet finished) requests before backpressure
    /// sheds the oldest one to admit a new arrival.
    pub max_backlog: usize,
}

impl TenantQuota {
    /// Creates a reservation.
    #[must_use]
    pub fn new(tenant: TenantId, quota: Work, max_backlog: usize) -> TenantQuota {
        TenantQuota {
            tenant,
            quota,
            max_backlog,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_id_round_trips_and_displays() {
        let t = TenantId::from_raw(7);
        assert_eq!(t.raw(), 7);
        assert_eq!(t.to_string(), "tenant7");
        assert!(TenantId::from_raw(1) < TenantId::from_raw(2));
    }

    #[test]
    fn quota_carries_its_fields() {
        let q = TenantQuota::new(TenantId::from_raw(3), Work::from_ms(0.5), 64);
        assert_eq!(q.tenant.raw(), 3);
        assert_eq!(q.quota.as_ms(), 0.5);
        assert_eq!(q.max_backlog, 64);
    }
}
