//! # rtdvs-core
//!
//! Core library for **real-time dynamic voltage scaling (RT-DVS)**,
//! reproducing Pillai & Shin, *"Real-Time Dynamic Voltage Scaling for
//! Low-Power Embedded Operating Systems"*, SOSP 2001.
//!
//! DVS lowers processor energy by running at a reduced frequency and — the
//! key CMOS property — a correspondingly reduced supply voltage, for a
//! quadratic (`E ∝ V²`) energy saving per cycle. Throughput-feedback DVS
//! breaks hard real-time guarantees; the paper's contribution is a family
//! of DVS algorithms coupled to the EDF and RM schedulers that provably
//! preserve every deadline:
//!
//! * [`policy::StaticDvs`] — static voltage scaling via the scaled
//!   schedulability tests (§2.3);
//! * [`policy::CcEdf`] and [`policy::CcRm`] — cycle-conserving scaling that
//!   reclaims unused worst-case allocations (§2.4);
//! * [`policy::LaEdf`] — look-ahead scaling that defers work past the next
//!   deadline (§2.5).
//!
//! This crate is pure: the task model ([`task`]), machine descriptions
//! ([`machine`]), schedulability analysis ([`analysis`]), scheduler
//! priority rules ([`sched`]), and the DVS policies ([`policy`]). The
//! companion crates provide the discrete-event simulator (`rtdvs-sim`),
//! workload generation (`rtdvs-taskgen`), the hardware platform models
//! (`rtdvs-platform`), and the RTOS runtime (`rtdvs-kernel`).
//!
//! # Examples
//!
//! Selecting a statically-scaled operating point for a task set:
//!
//! ```
//! use rtdvs_core::analysis::static_edf_point;
//! use rtdvs_core::machine::Machine;
//! use rtdvs_core::task::TaskSet;
//!
//! let tasks = TaskSet::from_ms_pairs(&[(8.0, 3.0), (10.0, 3.0), (14.0, 1.0)])?;
//! let machine = Machine::machine0();
//! let point = static_edf_point(&tasks, &machine).expect("schedulable");
//! assert_eq!(machine.point(point).freq, 0.75);
//! # Ok::<(), rtdvs_core::task::TaskSetError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod example;
pub mod hyperperiod;
pub mod machine;
pub mod policy;
pub mod readyq;
pub mod sched;
pub mod task;
pub mod tenant;
pub mod time;
pub mod view;

pub use analysis::RmTest;
pub use machine::{Machine, OperatingPoint, PointIdx};
pub use policy::{DvsPolicy, PolicyKind};
pub use readyq::ReadyQueue;
pub use sched::SchedulerKind;
pub use task::{Task, TaskId, TaskSet};
pub use tenant::{TenantId, TenantQuota};
pub use time::{Time, Work};
pub use view::{InvState, SystemView, TaskView};
