//! Schedulability analysis for EDF and RM, with frequency scaling.
//!
//! Scaling the operating frequency by a factor `α ∈ (0, 1]` multiplies every
//! worst-case computation time by `1/α` while periods and deadlines are
//! unchanged (§2.3). Each test below therefore takes `α` and evaluates the
//! classical condition on the scaled WCETs:
//!
//! * **EDF** — the necessary and sufficient utilization bound
//!   `Σ C_i/(α·P_i) ≤ 1` (Liu & Layland).
//! * **RM, Liu–Layland** — the sufficient bound
//!   `Σ C_i/(α·P_i) ≤ n(2^{1/n} − 1)`.
//! * **RM, scheduling points** — the exact (necessary and sufficient for
//!   synchronous release) Lehoczky–Sha–Ding test: every task must have some
//!   scheduling point `t ≤ P_i` at which the level-i workload fits.
//! * **RM, response time** — the equivalent iterative response-time
//!   analysis, kept as an independent cross-check of the scheduling-point
//!   test.

use crate::machine::{Machine, PointIdx};
use crate::task::{Task, TaskSet};
use crate::time::EPS;

/// Which RM schedulability test to use.
///
/// The paper's static-scaling algorithm (Fig. 1) uses a test from the
/// real-time literature whose cost it describes as roughly quadratic in the
/// number of tasks, which matches the scheduling-point test; the O(n)
/// Liu–Layland bound is provided for comparison and ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RmTest {
    /// Sufficient-only utilization bound `n(2^{1/n} − 1)`.
    LiuLayland,
    /// Exact scheduling-point (Lehoczky–Sha–Ding) test. The default.
    #[default]
    SchedulingPoints,
    /// Exact iterative response-time analysis.
    ResponseTime,
}

/// The Liu–Layland RM utilization bound `n(2^{1/n} − 1)` for `n` tasks.
///
/// # Panics
///
/// Panics if `n` is zero.
#[must_use]
pub fn liu_layland_bound(n: usize) -> f64 {
    assert!(n > 0, "bound undefined for zero tasks");
    let n = n as f64;
    n * (2.0_f64.powf(1.0 / n) - 1.0)
}

/// EDF feasibility of `tasks` at frequency factor `alpha`:
/// `Σ C_i/P_i ≤ α`.
#[must_use]
pub fn edf_feasible_at(tasks: &TaskSet, alpha: f64) -> bool {
    tasks.total_utilization() <= alpha + EPS
}

/// RM feasibility of `tasks` at frequency factor `alpha` under the chosen
/// test.
#[must_use]
pub fn rm_feasible_at(tasks: &TaskSet, alpha: f64, test: RmTest) -> bool {
    match test {
        RmTest::LiuLayland => {
            tasks.total_utilization() <= alpha * liu_layland_bound(tasks.len()) + EPS
        }
        RmTest::SchedulingPoints => rm_scheduling_points_feasible(tasks, alpha),
        RmTest::ResponseTime => rm_response_time_feasible(tasks, alpha),
    }
}

/// Ceiling of `t / p` that tolerates float round-off: values within a
/// relative hair of an integer are treated as that integer.
fn ceil_tolerant(t: f64, p: f64) -> f64 {
    let q = t / p;
    let r = q.round();
    if (q - r).abs() <= 1e-9 * r.max(1.0) {
        r
    } else {
        q.ceil()
    }
}

/// Exact scheduling-point RM test at frequency factor `alpha`.
///
/// For each task `i` in priority order, searches the scheduling points
/// `S_i = { k·P_j : j ≤ i, k = 1..⌊P_i/P_j⌋ } ∪ {P_i}` for a `t` with
/// `Σ_{j ≤ i} ⌈t/P_j⌉ · C_j/α ≤ t`.
fn rm_scheduling_points_feasible(tasks: &TaskSet, alpha: f64) -> bool {
    debug_assert!(alpha > 0.0);
    let order = tasks.rm_order();
    for (i, &id_i) in order.iter().enumerate() {
        let p_i = tasks.task(id_i).period().as_ms();
        // Collect scheduling points for level i.
        let mut points: Vec<f64> = Vec::new();
        for &id_j in &order[..=i] {
            let p_j = tasks.task(id_j).period().as_ms();
            let kmax = (p_i / p_j + 1e-9).floor() as u64;
            for k in 1..=kmax {
                points.push(k as f64 * p_j);
            }
        }
        points.push(p_i);
        let fits = points.iter().any(|&t| {
            let workload: f64 = order[..=i]
                .iter()
                .map(|&id_j| {
                    let task = tasks.task(id_j);
                    ceil_tolerant(t, task.period().as_ms()) * task.wcet().as_ms() / alpha
                })
                .sum();
            workload <= t + EPS
        });
        if !fits {
            return false;
        }
    }
    true
}

/// Exact response-time RM analysis at frequency factor `alpha`.
///
/// Iterates `R ← C_i/α + Σ_{j<i} ⌈R/P_j⌉ · C_j/α` to a fixed point for each
/// task; feasible if every fixed point is within the task's period.
fn rm_response_time_feasible(tasks: &TaskSet, alpha: f64) -> bool {
    debug_assert!(alpha > 0.0);
    let order = tasks.rm_order();
    for (i, &id_i) in order.iter().enumerate() {
        let c_i = tasks.task(id_i).wcet().as_ms() / alpha;
        let p_i = tasks.task(id_i).period().as_ms();
        let mut r = c_i;
        loop {
            let interference: f64 = order[..i]
                .iter()
                .map(|&id_j| {
                    let task = tasks.task(id_j);
                    ceil_tolerant(r, task.period().as_ms()) * task.wcet().as_ms() / alpha
                })
                .sum();
            let next = c_i + interference;
            if next > p_i + EPS {
                return false;
            }
            if (next - r).abs() <= EPS {
                break;
            }
            r = next;
        }
    }
    true
}

/// The statically-scaled EDF operating point (Fig. 1): the lowest point at
/// which the EDF test passes, or `None` if the set is infeasible even at
/// maximum frequency.
#[must_use]
pub fn static_edf_point(tasks: &TaskSet, machine: &Machine) -> Option<PointIdx> {
    machine.lowest_point_where(|p| edf_feasible_at(tasks, p.freq))
}

/// The statically-scaled RM operating point (Fig. 1): the lowest point at
/// which the chosen RM test passes, or `None` if none passes.
#[must_use]
pub fn static_rm_point(tasks: &TaskSet, machine: &Machine, test: RmTest) -> Option<PointIdx> {
    machine.lowest_point_where(|p| rm_feasible_at(tasks, p.freq, test))
}

/// The period-stretch ladder used by elastic overload degradation: each
/// factor multiplies a stretched task's nominal period, reducing its rate
/// (and utilization) while preserving its computing bound.
pub const STRETCH_LADDER: [f64; 3] = [1.25, 1.5, 2.0];

/// Searches for the smallest elastic period-stretch assignment that makes
/// `nominal` feasible, re-running the caller's schedulability test for every
/// candidate.
///
/// `nominal` are the tasks at their nominal periods (with whatever computing
/// bounds the caller wants validated — e.g. renegotiated to observed peaks).
/// `order` lists task indices from *least* to *most* critical; candidates
/// stretch a prefix of that order, so the least-critical tasks degrade
/// first. For each prefix length `k = 1..=n` (shortest first) and each
/// factor of [`STRETCH_LADDER`] (ascending), the candidate multiplies the
/// periods of `order[..k]` by the factor and asks `feasible` whether the
/// stretched set is schedulable. The first passing candidate wins, so the
/// result is deterministic and minimally disruptive: fewest tasks touched,
/// then smallest stretch — a more-critical task is never slowed while
/// deeper stretching of the less-critical ones would suffice.
///
/// Returns per-task factors aligned with `nominal` (`1.0` = untouched), or
/// `None` if even stretching every task by the ladder's maximum does not
/// help. Candidates containing an invalid task (a bound exceeding even the
/// stretched period) are skipped, not errors.
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..nominal.len()`.
pub fn elastic_stretch_assignment<F>(
    nominal: &[Task],
    order: &[usize],
    feasible: F,
) -> Option<Vec<f64>>
where
    F: Fn(&TaskSet) -> bool,
{
    assert_eq!(order.len(), nominal.len(), "order must cover every task");
    {
        let mut seen = vec![false; nominal.len()];
        for &i in order {
            assert!(!seen[i], "order must be a permutation");
            seen[i] = true;
        }
    }
    for k in 1..=order.len() {
        for &factor in &STRETCH_LADDER {
            let mut factors = vec![1.0; nominal.len()];
            for &i in &order[..k] {
                factors[i] = factor;
            }
            let stretched: Option<Vec<Task>> = nominal
                .iter()
                .zip(&factors)
                .map(|(t, &f)| {
                    Task::new(crate::time::Time::from_ms(t.period().as_ms() * f), t.wcet()).ok()
                })
                .collect();
            let Some(tasks) = stretched else { continue };
            let Ok(candidate) = TaskSet::new(tasks) else {
                continue;
            };
            if feasible(&candidate) {
                return Some(factors);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_set() -> TaskSet {
        TaskSet::from_ms_pairs(&[(8.0, 3.0), (10.0, 3.0), (14.0, 1.0)]).expect("valid task set")
    }

    #[test]
    fn liu_layland_values() {
        assert!((liu_layland_bound(1) - 1.0).abs() < 1e-12);
        assert!((liu_layland_bound(2) - 0.828_427_124_746_19).abs() < 1e-9);
        assert!((liu_layland_bound(3) - 0.779_763_149_684_62).abs() < 1e-9);
        // Tends to ln 2 for large n.
        assert!((liu_layland_bound(10_000) - core::f64::consts::LN_2).abs() < 1e-4);
    }

    #[test]
    fn edf_test_on_paper_set() {
        let set = paper_set();
        // U = 0.746: feasible at 0.75 and 1.0, not at 0.5 (Fig. 2).
        assert!(edf_feasible_at(&set, 1.0));
        assert!(edf_feasible_at(&set, 0.75));
        assert!(!edf_feasible_at(&set, 0.5));
    }

    #[test]
    fn rm_tests_on_paper_set() {
        let set = paper_set();
        // Fig. 2: static RM must run at 1.0; 0.75 misses T3's deadline.
        for test in [
            RmTest::LiuLayland,
            RmTest::SchedulingPoints,
            RmTest::ResponseTime,
        ] {
            assert!(rm_feasible_at(&set, 1.0, test), "{test:?} at 1.0");
            assert!(!rm_feasible_at(&set, 0.75, test), "{test:?} at 0.75");
            assert!(!rm_feasible_at(&set, 0.5, test), "{test:?} at 0.5");
        }
    }

    #[test]
    fn exact_tests_admit_more_than_liu_layland() {
        // Harmonic periods: U = 1.0 is RM-schedulable exactly, but fails LL.
        let set = TaskSet::from_ms_pairs(&[(2.0, 1.0), (4.0, 2.0)]).expect("valid task set");
        assert!((set.total_utilization() - 1.0).abs() < 1e-12);
        assert!(!rm_feasible_at(&set, 1.0, RmTest::LiuLayland));
        assert!(rm_feasible_at(&set, 1.0, RmTest::SchedulingPoints));
        assert!(rm_feasible_at(&set, 1.0, RmTest::ResponseTime));
    }

    #[test]
    fn static_points_on_paper_set() {
        let set = paper_set();
        let m = Machine::machine0();
        // Fig. 2: static EDF uses 0.75, static RM uses 1.0.
        assert_eq!(static_edf_point(&set, &m), Some(1));
        assert_eq!(static_rm_point(&set, &m, RmTest::SchedulingPoints), Some(2));
        assert_eq!(static_rm_point(&set, &m, RmTest::LiuLayland), Some(2));
    }

    #[test]
    fn infeasible_set_has_no_static_point() {
        // U > 1: not schedulable at any frequency.
        let set = TaskSet::from_ms_pairs(&[(2.0, 1.5), (4.0, 3.0)]).expect("valid task set");
        let m = Machine::machine0();
        assert_eq!(static_edf_point(&set, &m), None);
        assert_eq!(static_rm_point(&set, &m, RmTest::SchedulingPoints), None);
    }

    #[test]
    fn single_task_feasibility_threshold() {
        // One task with U = 0.6 needs α ≥ 0.6 under every test.
        let set = TaskSet::from_ms_pairs(&[(10.0, 6.0)]).expect("valid task set");
        for test in [
            RmTest::LiuLayland,
            RmTest::SchedulingPoints,
            RmTest::ResponseTime,
        ] {
            assert!(rm_feasible_at(&set, 0.6, test));
            assert!(!rm_feasible_at(&set, 0.59, test));
        }
        assert!(edf_feasible_at(&set, 0.6));
        assert!(!edf_feasible_at(&set, 0.59));
    }

    #[test]
    fn ceil_tolerant_handles_exact_multiples() {
        assert_eq!(ceil_tolerant(14.0, 7.0), 2.0);
        assert_eq!(ceil_tolerant(14.000001, 7.0), 3.0);
        assert_eq!(ceil_tolerant(13.9, 7.0), 2.0);
        // A value that is an exact multiple only up to float noise.
        let t = 0.3 * 3.0; // 0.8999999999999999
        assert_eq!(ceil_tolerant(t, 0.3), 3.0);
    }

    #[test]
    fn exact_tests_agree_on_random_like_sets() {
        // A few hand-picked sets where LL is inconclusive.
        let sets = [
            vec![(5.0, 2.0), (7.0, 2.0), (11.0, 1.5)],
            vec![(3.0, 1.0), (6.0, 2.0), (12.0, 4.0)],
            vec![(10.0, 4.0), (15.0, 4.0), (35.0, 3.5)],
        ];
        for pairs in sets {
            let set = TaskSet::from_ms_pairs(&pairs).expect("valid task set");
            for alpha in [0.5, 0.6, 0.7, 0.75, 0.8, 0.9, 1.0] {
                assert_eq!(
                    rm_feasible_at(&set, alpha, RmTest::SchedulingPoints),
                    rm_feasible_at(&set, alpha, RmTest::ResponseTime),
                    "disagreement on {pairs:?} at alpha={alpha}"
                );
            }
        }
    }

    #[test]
    fn scaling_monotonicity() {
        // If feasible at α, feasible at any α' ≥ α.
        let set = paper_set();
        let mut prev = false;
        for step in 0..=20 {
            let alpha = 0.05 * step as f64 + 0.0;
            if alpha <= 0.0 {
                continue;
            }
            let now = rm_feasible_at(&set, alpha, RmTest::SchedulingPoints);
            assert!(
                !prev || now,
                "feasibility lost when raising alpha to {alpha}"
            );
            prev = now;
        }
    }

    #[test]
    fn stretch_finds_the_minimal_prefix() {
        use crate::time::{Time, Work};
        // U = 0.5 + 0.6 = 1.1: infeasible under EDF. Stretching only the
        // least-critical task (index 1) by 1.25 gives 0.5 + 0.48 = 0.98.
        let nominal = [
            Task::new(Time::from_ms(10.0), Work::from_ms(5.0)).expect("valid"),
            Task::new(Time::from_ms(10.0), Work::from_ms(6.0)).expect("valid"),
        ];
        let factors =
            elastic_stretch_assignment(&nominal, &[1, 0], |set| edf_feasible_at(set, 1.0))
                .expect("a stretch must exist");
        assert_eq!(factors, vec![1.0, 1.25]);
    }

    #[test]
    fn stretch_escalates_factor_before_criticality() {
        use crate::time::{Time, Work};
        // U = 0.5 + 0.9 = 1.4. Stretching task 1 alone: ×1.25 → 1.22,
        // ×1.5 → 1.1, ×2.0 → 0.95 — the ladder must reach 2.0 on the
        // least-critical task without ever touching task 0.
        let nominal = [
            Task::new(Time::from_ms(10.0), Work::from_ms(5.0)).expect("valid"),
            Task::new(Time::from_ms(10.0), Work::from_ms(9.0)).expect("valid"),
        ];
        let factors =
            elastic_stretch_assignment(&nominal, &[1, 0], |set| edf_feasible_at(set, 1.0))
                .expect("a stretch must exist");
        assert_eq!(factors, vec![1.0, 2.0]);
    }

    #[test]
    fn hopeless_overload_returns_none() {
        use crate::time::{Time, Work};
        // Even at ×2 on both tasks U = 2.4/2 + 1.8/2 > 1.
        let nominal = [
            Task::new(Time::from_ms(1.0), Work::from_ms(2.4)).ok(),
            Task::new(Time::from_ms(1.0), Work::from_ms(0.9)).ok(),
        ];
        // A bound larger than the period is unrepresentable as a Task, so
        // build the hopeless case from representable-but-overloaded tasks:
        // three of U = 0.9 each still sum to 1.35 at the ladder's maximum.
        assert!(nominal[0].is_none(), "2.4 > 1.0 must not be a valid task");
        let nominal = [
            Task::new(Time::from_ms(10.0), Work::from_ms(9.0)).expect("valid"),
            Task::new(Time::from_ms(10.0), Work::from_ms(9.0)).expect("valid"),
            Task::new(Time::from_ms(10.0), Work::from_ms(9.0)).expect("valid"),
        ];
        assert_eq!(
            elastic_stretch_assignment(&nominal, &[2, 1, 0], |set| edf_feasible_at(set, 1.0)),
            None
        );
    }

    #[test]
    fn stretch_skips_candidates_with_invalid_tasks() {
        use crate::time::{Time, Work};
        // Task 1's bound (8) exceeds its nominal period (6): only stretched
        // candidates that make room for the bound are even representable.
        let nominal = [
            Task::new(Time::from_ms(10.0), Work::from_ms(2.0)).expect("valid"),
            Task::new(Time::from_ms(12.0), Work::from_ms(8.0)).expect("valid"),
        ];
        // Pretend the caller renegotiated task 1's bound upward by building
        // the nominal row directly with the larger bound via a short period.
        let over = [
            nominal[0],
            Task::new(Time::from_ms(8.0), Work::from_ms(8.0)).expect("valid"),
        ];
        // At nominal, U = 0.2 + 1.0 = 1.2; ×1.25 on task 1 → 0.2 + 0.8 = 1.0.
        let factors = elastic_stretch_assignment(&over, &[1, 0], |set| edf_feasible_at(set, 1.0))
            .expect("a stretch must exist");
        assert_eq!(factors, vec![1.0, 1.25]);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn stretch_rejects_bad_order() {
        use crate::time::{Time, Work};
        let nominal = [
            Task::new(Time::from_ms(10.0), Work::from_ms(1.0)).expect("valid"),
            Task::new(Time::from_ms(10.0), Work::from_ms(1.0)).expect("valid"),
        ];
        let _ = elastic_stretch_assignment(&nominal, &[0, 0], |_| true);
    }
}
