//! Manually pinned operating point.
//!
//! The prototype's PowerNow! module exposes a `/procfs` interface so an
//! operator (or a user-level governor) can "manually deal with operating
//! frequency and voltage through simple Unix shell commands" (§4.2). This
//! policy is that knob: the processor runs — and idles — at one fixed
//! point, chosen by the user, with no schedulability reasoning at all.
//!
//! It is also the tool for reproducing the *negative* results: pinning the
//! paper's example task set to 0.75 under RM reproduces Fig. 2's missed
//! deadline for T3.

use crate::machine::{Machine, PointIdx};
use crate::policy::DvsPolicy;
use crate::sched::SchedulerKind;
use crate::task::{TaskId, TaskSet};
use crate::view::SystemView;

/// A fixed, user-chosen operating point under either scheduler.
#[derive(Debug, Clone)]
pub struct ManualDvs {
    scheduler: SchedulerKind,
    requested: PointIdx,
    point: PointIdx,
}

impl ManualDvs {
    /// Pins the machine to operating point `point` (clamped to the
    /// machine's range at [`DvsPolicy::init`]).
    #[must_use]
    pub fn new(scheduler: SchedulerKind, point: PointIdx) -> ManualDvs {
        ManualDvs {
            scheduler,
            requested: point,
            point,
        }
    }

    /// Re-pins to a different point (takes effect at the next scheduling
    /// point, like writing the prototype's procfs file).
    pub fn set_point(&mut self, point: PointIdx) {
        self.requested = point;
        self.point = point;
    }
}

impl DvsPolicy for ManualDvs {
    fn name(&self) -> &'static str {
        "manual"
    }

    fn scheduler(&self) -> SchedulerKind {
        self.scheduler
    }

    fn init(&mut self, _tasks: &TaskSet, machine: &Machine) -> PointIdx {
        self.point = self.requested.min(machine.highest());
        self.point
    }

    fn on_release(&mut self, _task: TaskId, _sys: &SystemView<'_>) -> PointIdx {
        self.point
    }

    fn on_completion(&mut self, _task: TaskId, _sys: &SystemView<'_>) -> PointIdx {
        self.point
    }

    fn idle_point(&self, _machine: &Machine) -> PointIdx {
        self.point
    }

    fn current_point(&self) -> PointIdx {
        self.point
    }

    fn guarantees(&self, _tasks: &TaskSet) -> bool {
        // A manual pin makes no promise; real guarantees need the
        // schedulability test at the pinned frequency, which the operator
        // has bypassed.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pins_and_clamps() {
        let tasks = TaskSet::from_ms_pairs(&[(8.0, 3.0)]).expect("valid task set");
        let machine = Machine::machine0();
        let mut p = ManualDvs::new(SchedulerKind::Rm, 99);
        assert_eq!(p.init(&tasks, &machine), machine.highest());
        let mut p = ManualDvs::new(SchedulerKind::Edf, 1);
        assert_eq!(p.init(&tasks, &machine), 1);
        assert_eq!(p.idle_point(&machine), 1);
        p.set_point(0);
        assert_eq!(p.current_point(), 0);
        assert!(!p.guarantees(&tasks));
    }
}
