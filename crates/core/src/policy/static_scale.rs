//! Static voltage scaling (§2.3, Fig. 1): pick the lowest operating point
//! at which the frequency-scaled schedulability test still passes, and keep
//! it until the task set changes.

use crate::analysis::{static_edf_point, static_rm_point, RmTest};
use crate::machine::{Machine, PointIdx};
use crate::policy::{scheduler_guarantees, DvsPolicy};
use crate::sched::SchedulerKind;
use crate::task::{TaskId, TaskSet};
use crate::view::SystemView;

/// Statically-scaled EDF or RM.
///
/// The operating point is selected once per task set by [`DvsPolicy::init`]
/// and never changes afterwards — including during idle (§3.2 observes that
/// the static schemes do not drop to the lowest point while halted). If the
/// task set fails the schedulability test even at maximum frequency, the
/// maximum point is used (deadline guarantees are then void; admission
/// control should have rejected the set).
#[derive(Debug, Clone)]
pub struct StaticDvs {
    scheduler: SchedulerKind,
    rm_test: RmTest,
    point: PointIdx,
}

impl StaticDvs {
    /// Statically-scaled EDF.
    #[must_use]
    pub fn edf() -> StaticDvs {
        StaticDvs {
            scheduler: SchedulerKind::Edf,
            rm_test: RmTest::default(),
            point: 0,
        }
    }

    /// Statically-scaled RM using the given schedulability test.
    #[must_use]
    pub fn rm(rm_test: RmTest) -> StaticDvs {
        StaticDvs {
            scheduler: SchedulerKind::Rm,
            rm_test,
            point: 0,
        }
    }

    /// The RM test variant in use (meaningful only for the RM flavor).
    #[must_use]
    pub fn rm_test(&self) -> RmTest {
        self.rm_test
    }
}

impl DvsPolicy for StaticDvs {
    fn name(&self) -> &'static str {
        match self.scheduler {
            SchedulerKind::Edf => "StaticEDF",
            SchedulerKind::Rm => "StaticRM",
        }
    }

    fn scheduler(&self) -> SchedulerKind {
        self.scheduler
    }

    fn init(&mut self, tasks: &TaskSet, machine: &Machine) -> PointIdx {
        let chosen = match self.scheduler {
            SchedulerKind::Edf => static_edf_point(tasks, machine),
            SchedulerKind::Rm => static_rm_point(tasks, machine, self.rm_test),
        };
        self.point = chosen.unwrap_or(machine.highest());
        self.point
    }

    fn on_release(&mut self, _task: TaskId, _sys: &SystemView<'_>) -> PointIdx {
        self.point
    }

    fn on_completion(&mut self, _task: TaskId, _sys: &SystemView<'_>) -> PointIdx {
        self.point
    }

    fn idle_point(&self, _machine: &Machine) -> PointIdx {
        self.point
    }

    fn current_point(&self) -> PointIdx {
        self.point
    }

    fn guarantees(&self, tasks: &TaskSet) -> bool {
        scheduler_guarantees(self.scheduler, tasks, self.rm_test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_set() -> TaskSet {
        TaskSet::from_ms_pairs(&[(8.0, 3.0), (10.0, 3.0), (14.0, 1.0)]).expect("valid task set")
    }

    #[test]
    fn fig2_static_points() {
        // Fig. 2: static EDF uses 0.75; static RM cannot go below 1.0.
        let set = paper_set();
        let m = Machine::machine0();
        let mut edf = StaticDvs::edf();
        assert_eq!(edf.init(&set, &m), 1);
        assert_eq!(m.point(edf.current_point()).freq, 0.75);
        let mut rm = StaticDvs::rm(RmTest::default());
        assert_eq!(rm.init(&set, &m), 2);
        assert_eq!(m.point(rm.current_point()).freq, 1.0);
    }

    #[test]
    fn low_utilization_set_scales_to_lowest() {
        let set = TaskSet::from_ms_pairs(&[(10.0, 1.0), (20.0, 2.0)]).expect("valid task set");
        let m = Machine::machine0();
        let mut edf = StaticDvs::edf();
        assert_eq!(edf.init(&set, &m), 0);
        let mut rm = StaticDvs::rm(RmTest::default());
        assert_eq!(rm.init(&set, &m), 0);
    }

    #[test]
    fn infeasible_set_saturates_at_max() {
        let set = TaskSet::from_ms_pairs(&[(2.0, 1.5), (4.0, 3.0)]).expect("valid task set");
        let m = Machine::machine0();
        let mut edf = StaticDvs::edf();
        assert_eq!(edf.init(&set, &m), m.highest());
        assert!(!edf.guarantees(&set));
    }

    #[test]
    fn idle_stays_at_static_point() {
        let set = paper_set();
        let m = Machine::machine0();
        let mut edf = StaticDvs::edf();
        edf.init(&set, &m);
        assert_eq!(edf.idle_point(&m), 1);
    }

    #[test]
    fn machine1_lets_static_edf_go_lower() {
        // With the 0.83 point available, U = 0.746 fits under 0.83 too, but
        // 0.75 is still the lowest sufficient point.
        let set = paper_set();
        let m = Machine::machine1();
        let mut edf = StaticDvs::edf();
        edf.init(&set, &m);
        assert_eq!(m.point(edf.current_point()).freq, 0.75);
    }
}
