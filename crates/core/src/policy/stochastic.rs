//! Statistical RT-DVS (extension): the paper's §6 future-work direction,
//! "DVS with probabilistic or statistical deadline guarantees".
//!
//! Cycle-conserving EDF is pessimistic between a task's release and its
//! completion: it reserves the full worst case `C_i` even though the task
//! will almost surely use far less. This policy instead reserves the
//! `confidence`-quantile of the task's *observed* execution times (learned
//! online from completed invocations), trading a small, tunable miss
//! probability for lower frequency while an invocation is outstanding.
//!
//! Guarantee model: deadlines are **not** absolutely guaranteed. With
//! confidence `q`, each invocation's reservation covers at least a
//! fraction `q` of the empirically observed executions; tasks that exceed
//! their reservation simply run longer at the chosen frequency and may
//! miss. Setting `confidence = 1.0` reserves the largest execution seen so
//! far (still weaker than the declared WCET until the worst case has been
//! observed). During the warm-up period (fewer than
//! [`StochasticEdf::WARMUP`] samples) the full worst case is used, so a
//! system that never exhibits variability behaves exactly like ccEDF.

use crate::analysis::RmTest;
use crate::machine::{Machine, PointIdx};
use crate::policy::{scheduler_guarantees, DvsPolicy};
use crate::sched::SchedulerKind;
use crate::task::{TaskId, TaskSet};
use crate::time::Work;
use crate::view::SystemView;

/// Ring buffer of recent execution-time samples for one task.
#[derive(Debug, Clone)]
struct SampleWindow {
    samples: Vec<f64>,
    next: usize,
    filled: bool,
}

impl SampleWindow {
    fn new(capacity: usize) -> SampleWindow {
        SampleWindow {
            samples: Vec::with_capacity(capacity),
            next: 0,
            filled: false,
        }
    }

    fn push(&mut self, value: f64) {
        if self.samples.len() < self.samples.capacity() {
            self.samples.push(value);
        } else {
            self.samples[self.next] = value;
            self.filled = true;
        }
        self.next = (self.next + 1) % self.samples.capacity();
    }

    fn len(&self) -> usize {
        self.samples.len()
    }

    /// The `q`-quantile of the recorded samples (nearest-rank, rounded
    /// up), or `None` if empty.
    fn quantile(&self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        Some(sorted[rank])
    }
}

/// EDF-based DVS with statistical (quantile) execution-time reservations.
#[derive(Debug, Clone)]
pub struct StochasticEdf {
    confidence: f64,
    windows: Vec<SampleWindow>,
    /// Current reservation-based utilization per task.
    util: Vec<f64>,
    point: PointIdx,
}

impl StochasticEdf {
    /// Samples required before trusting the empirical distribution.
    pub const WARMUP: usize = 8;

    /// Samples retained per task.
    pub const WINDOW: usize = 64;

    /// Creates the policy with the given confidence quantile.
    ///
    /// # Panics
    ///
    /// Panics if `confidence` is not in `(0, 1]`.
    #[must_use]
    pub fn new(confidence: f64) -> StochasticEdf {
        assert!(
            confidence > 0.0 && confidence <= 1.0,
            "confidence {confidence} outside (0, 1]"
        );
        StochasticEdf {
            confidence,
            windows: Vec::new(),
            util: Vec::new(),
            point: 0,
        }
    }

    /// The configured confidence quantile.
    #[must_use]
    pub fn confidence(&self) -> f64 {
        self.confidence
    }

    /// The reservation (in work) for an outstanding invocation of `task`:
    /// the confidence quantile of observed executions once warmed up, the
    /// declared worst case before that. Never below the work the current
    /// invocation has already consumed.
    fn reservation(&self, task: TaskId, wcet: Work, executed: Work) -> Work {
        let w = &self.windows[task.0];
        let base = if w.len() >= Self::WARMUP {
            Work::from_ms(w.quantile(self.confidence).expect("non-empty window")).min(wcet)
        } else {
            wcet
        };
        base.max(executed)
    }

    fn select(&mut self, machine: &Machine) -> PointIdx {
        let sum: f64 = self.util.iter().sum();
        self.point = machine.point_at_least(sum);
        self.point
    }
}

impl DvsPolicy for StochasticEdf {
    fn name(&self) -> &'static str {
        "stochEDF"
    }

    fn scheduler(&self) -> SchedulerKind {
        SchedulerKind::Edf
    }

    fn init(&mut self, tasks: &TaskSet, machine: &Machine) -> PointIdx {
        self.windows = (0..tasks.len())
            .map(|_| SampleWindow::new(Self::WINDOW))
            .collect();
        self.util = tasks.tasks().iter().map(|t| t.utilization()).collect();
        self.select(machine)
    }

    fn on_release(&mut self, task: TaskId, sys: &SystemView<'_>) -> PointIdx {
        let spec = sys.tasks.task(task);
        let reserve = self.reservation(task, spec.wcet(), Work::ZERO);
        self.util[task.0] = reserve.utilization_over(spec.period());
        self.select(sys.machine)
    }

    fn on_completion(&mut self, task: TaskId, sys: &SystemView<'_>) -> PointIdx {
        let spec = sys.tasks.task(task);
        let actual = sys.view(task).executed;
        self.windows[task.0].push(actual.as_ms());
        // Like ccEDF: until the next release, the task's demand is exactly
        // what it used.
        self.util[task.0] = actual.utilization_over(spec.period());
        self.select(sys.machine)
    }

    fn idle_point(&self, machine: &Machine) -> PointIdx {
        machine.lowest()
    }

    fn current_point(&self) -> PointIdx {
        self.point
    }

    fn guarantees(&self, tasks: &TaskSet) -> bool {
        // Admission still requires the set to be schedulable in the
        // absolute sense — the statistical relaxation applies only to the
        // frequency choice, not to admission.
        scheduler_guarantees(SchedulerKind::Edf, tasks, RmTest::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;
    use crate::view::{InvState, TaskView};

    fn paper_set() -> TaskSet {
        TaskSet::from_ms_pairs(&[(8.0, 3.0), (10.0, 3.0), (14.0, 1.0)]).expect("valid task set")
    }

    fn active_views(tasks: &TaskSet) -> Vec<TaskView> {
        tasks
            .tasks()
            .iter()
            .map(|t| TaskView {
                invocation: 1,
                state: InvState::Active,
                executed: Work::ZERO,
                deadline: t.period(),
                next_release: t.period(),
            })
            .collect()
    }

    #[test]
    fn window_quantiles() {
        let mut w = SampleWindow::new(8);
        for v in [1.0, 2.0, 3.0, 4.0] {
            w.push(v);
        }
        assert_eq!(w.quantile(1.0), Some(4.0));
        assert_eq!(w.quantile(0.5), Some(2.0));
        assert_eq!(w.quantile(0.25), Some(1.0));
        assert_eq!(w.quantile(0.75), Some(3.0));
    }

    #[test]
    fn window_evicts_oldest() {
        let mut w = SampleWindow::new(4);
        for v in [9.0, 9.0, 9.0, 9.0, 1.0, 1.0, 1.0, 1.0] {
            w.push(v);
        }
        assert_eq!(w.quantile(1.0), Some(1.0), "old maxima must age out");
        assert!(w.filled);
    }

    #[test]
    fn empty_window_has_no_quantile() {
        let w = SampleWindow::new(4);
        assert_eq!(w.quantile(0.9), None);
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn rejects_zero_confidence() {
        let _ = StochasticEdf::new(0.0);
    }

    #[test]
    fn behaves_like_cc_edf_during_warmup() {
        let tasks = paper_set();
        let machine = Machine::machine0();
        let mut p = StochasticEdf::new(0.9);
        let idx = p.init(&tasks, &machine);
        // Worst-case utilization 0.746 → point 0.75, exactly like ccEDF.
        assert_eq!(machine.point(idx).freq, 0.75);
        let views = active_views(&tasks);
        let sys = SystemView {
            now: Time::ZERO,
            tasks: &tasks,
            machine: &machine,
            views: &views,
        };
        assert_eq!(p.on_release(TaskId(0), &sys), 1);
    }

    #[test]
    fn learned_quantile_lowers_reservation() {
        let tasks = paper_set();
        let machine = Machine::machine0();
        let mut p = StochasticEdf::new(0.9);
        p.init(&tasks, &machine);
        // Feed ten completions of T1 at one third of its worst case.
        let mut views = active_views(&tasks);
        for _ in 0..10 {
            views[0].state = InvState::Completed;
            views[0].executed = Work::from_ms(1.0);
            let sys = SystemView {
                now: Time::from_ms(1.0),
                tasks: &tasks,
                machine: &machine,
                views: &views,
            };
            p.on_completion(TaskId(0), &sys);
        }
        // On the next release the reservation is the learned 1 ms, not the
        // 3 ms worst case: U ≈ 1/8 + 3/10 + 1/14 = 0.496 → point 0.5.
        views[0].state = InvState::Active;
        views[0].executed = Work::ZERO;
        let sys = SystemView {
            now: Time::from_ms(8.0),
            tasks: &tasks,
            machine: &machine,
            views: &views,
        };
        let idx = p.on_release(TaskId(0), &sys);
        assert_eq!(machine.point(idx).freq, 0.5);
    }

    #[test]
    fn reservation_never_below_executed() {
        let tasks = paper_set();
        let machine = Machine::machine0();
        let mut p = StochasticEdf::new(0.5);
        p.init(&tasks, &machine);
        for _ in 0..StochasticEdf::WARMUP {
            p.windows[0].push(0.5);
        }
        let r = p.reservation(TaskId(0), Work::from_ms(3.0), Work::from_ms(2.2));
        assert_eq!(r.as_ms(), 2.2);
    }

    #[test]
    fn higher_confidence_reserves_more() {
        let tasks = paper_set();
        let machine = Machine::machine0();
        let mut lo = StochasticEdf::new(0.5);
        let mut hi = StochasticEdf::new(1.0);
        lo.init(&tasks, &machine);
        hi.init(&tasks, &machine);
        for v in [0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 2.0, 1.0] {
            lo.windows[0].push(v);
            hi.windows[0].push(v);
        }
        let rl = lo.reservation(TaskId(0), Work::from_ms(3.0), Work::ZERO);
        let rh = hi.reservation(TaskId(0), Work::from_ms(3.0), Work::ZERO);
        assert!(rl < rh);
        assert_eq!(rh.as_ms(), 3.0);
    }
}
