//! The non-DVS baseline: always run at maximum frequency.

use crate::analysis::RmTest;
use crate::machine::{Machine, PointIdx};
use crate::policy::{scheduler_guarantees, DvsPolicy};
use crate::sched::SchedulerKind;
use crate::task::{TaskId, TaskSet};
use crate::view::SystemView;

/// Plain EDF or RM scheduling with no voltage scaling (the paper's "none"
/// comparison row): the processor always runs — and idles — at the maximum
/// operating point.
#[derive(Debug, Clone)]
pub struct PlainDvs {
    scheduler: SchedulerKind,
    point: PointIdx,
}

impl PlainDvs {
    /// Creates the baseline for the given scheduler.
    #[must_use]
    pub fn new(scheduler: SchedulerKind) -> PlainDvs {
        PlainDvs {
            scheduler,
            point: 0,
        }
    }
}

impl DvsPolicy for PlainDvs {
    fn name(&self) -> &'static str {
        match self.scheduler {
            SchedulerKind::Edf => "EDF",
            SchedulerKind::Rm => "RM",
        }
    }

    fn scheduler(&self) -> SchedulerKind {
        self.scheduler
    }

    fn init(&mut self, _tasks: &TaskSet, machine: &Machine) -> PointIdx {
        self.point = machine.highest();
        self.point
    }

    fn on_release(&mut self, _task: TaskId, _sys: &SystemView<'_>) -> PointIdx {
        self.point
    }

    fn on_completion(&mut self, _task: TaskId, _sys: &SystemView<'_>) -> PointIdx {
        self.point
    }

    fn idle_point(&self, _machine: &Machine) -> PointIdx {
        // No DVS support: the processor halts at full frequency and voltage.
        self.point
    }

    fn current_point(&self) -> PointIdx {
        self.point
    }

    fn guarantees(&self, tasks: &TaskSet) -> bool {
        scheduler_guarantees(self.scheduler, tasks, RmTest::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{Time, Work};
    use crate::view::{InvState, TaskView};

    #[test]
    fn always_max_point() {
        let tasks = TaskSet::from_ms_pairs(&[(8.0, 3.0)]).unwrap();
        let machine = Machine::machine0();
        let mut p = PlainDvs::new(SchedulerKind::Edf);
        assert_eq!(p.init(&tasks, &machine), 2);
        let views = vec![TaskView {
            invocation: 1,
            state: InvState::Active,
            executed: Work::ZERO,
            deadline: Time::from_ms(8.0),
            next_release: Time::from_ms(8.0),
        }];
        let sys = SystemView {
            now: Time::ZERO,
            tasks: &tasks,
            machine: &machine,
            views: &views,
        };
        assert_eq!(p.on_release(TaskId(0), &sys), 2);
        assert_eq!(p.on_completion(TaskId(0), &sys), 2);
        assert_eq!(p.idle_point(&machine), 2);
        assert_eq!(p.current_point(), 2);
    }

    #[test]
    fn names_follow_scheduler() {
        assert_eq!(PlainDvs::new(SchedulerKind::Edf).name(), "EDF");
        assert_eq!(PlainDvs::new(SchedulerKind::Rm).name(), "RM");
    }
}
