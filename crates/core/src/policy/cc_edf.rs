//! Cycle-conserving EDF (§2.4, Fig. 4).
//!
//! The EDF utilization test is recomputed at every scheduling point using
//! the *actual* cycles consumed by completed invocations in place of their
//! worst case: on release of `T_i` its utilization reverts to `C_i/P_i`; on
//! completion it drops to `cc_i/P_i` until the next release. The lowest
//! operating point whose frequency covers the summed utilization is used.

use crate::analysis::RmTest;
use crate::machine::{Machine, PointIdx};
use crate::policy::{scheduler_guarantees, DvsPolicy};
use crate::sched::SchedulerKind;
use crate::task::{TaskId, TaskSet};
use crate::view::SystemView;

/// Cycle-conserving EDF.
#[derive(Debug, Clone, Default)]
pub struct CcEdf {
    /// Current per-task utilization `U_i`: worst-case while an invocation
    /// is outstanding, actual once it has completed.
    util: Vec<f64>,
    point: PointIdx,
}

impl CcEdf {
    /// Creates the policy (state is filled in by [`DvsPolicy::init`]).
    #[must_use]
    pub fn new() -> CcEdf {
        CcEdf::default()
    }

    /// The utilization sum currently used by the test (exposed for
    /// inspection; Fig. 3 annotates its value at each scheduling point).
    #[must_use]
    pub fn utilization_sum(&self) -> f64 {
        self.util.iter().sum()
    }

    fn select(&mut self, machine: &Machine) -> PointIdx {
        self.point = machine.point_at_least(self.utilization_sum());
        self.point
    }
}

impl DvsPolicy for CcEdf {
    fn name(&self) -> &'static str {
        "ccEDF"
    }

    fn scheduler(&self) -> SchedulerKind {
        SchedulerKind::Edf
    }

    fn init(&mut self, tasks: &TaskSet, machine: &Machine) -> PointIdx {
        self.util = tasks.tasks().iter().map(|t| t.utilization()).collect();
        self.select(machine)
    }

    fn on_release(&mut self, task: TaskId, sys: &SystemView<'_>) -> PointIdx {
        // Restore the worst-case bound for the new invocation (the paper's
        // `U_i = C_i / P_i` step); this may raise the frequency.
        self.util[task.0] = sys.tasks.task(task).utilization();
        self.select(sys.machine)
    }

    fn on_completion(&mut self, task: TaskId, sys: &SystemView<'_>) -> PointIdx {
        // Use the actual cycles of this invocation until the next release
        // (the paper's `U_i = cc_i / P_i` step).
        let actual = sys.view(task).executed;
        self.util[task.0] = actual.utilization_over(sys.tasks.task(task).period());
        self.select(sys.machine)
    }

    fn idle_point(&self, machine: &Machine) -> PointIdx {
        machine.lowest()
    }

    fn current_point(&self) -> PointIdx {
        self.point
    }

    fn guarantees(&self, tasks: &TaskSet) -> bool {
        scheduler_guarantees(SchedulerKind::Edf, tasks, RmTest::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{Time, Work};
    use crate::view::{InvState, TaskView};

    fn paper_set() -> TaskSet {
        TaskSet::from_ms_pairs(&[(8.0, 3.0), (10.0, 3.0), (14.0, 1.0)]).expect("valid task set")
    }

    fn views(entries: &[(InvState, f64, f64)]) -> Vec<TaskView> {
        entries
            .iter()
            .map(|&(state, executed, deadline)| TaskView {
                invocation: 1,
                state,
                executed: Work::from_ms(executed),
                deadline: Time::from_ms(deadline),
                next_release: Time::from_ms(deadline),
            })
            .collect()
    }

    /// Walks the scheduling points of Fig. 3 and checks the printed
    /// utilization values and the selected frequencies.
    #[test]
    fn fig3_utilization_steps() {
        let tasks = paper_set();
        let machine = Machine::machine0();
        let mut p = CcEdf::new();

        // t = 0: worst case, U = 0.746 → frequency 0.75.
        let idx = p.init(&tasks, &machine);
        assert!((p.utilization_sum() - 0.746_428_571).abs() < 1e-6);
        assert_eq!(machine.point(idx).freq, 0.75);

        // T1 completes after 2 ms of work: U = 2/8+3/10+1/14 = 0.621 → 0.75.
        let v = views(&[
            (InvState::Completed, 2.0, 8.0),
            (InvState::Active, 0.0, 10.0),
            (InvState::Active, 0.0, 14.0),
        ]);
        let sys = SystemView {
            now: Time::from_ms(8.0 / 3.0),
            tasks: &tasks,
            machine: &machine,
            views: &v,
        };
        let idx = p.on_completion(TaskId(0), &sys);
        assert!((p.utilization_sum() - 0.621_428_571).abs() < 1e-6);
        assert_eq!(machine.point(idx).freq, 0.75);

        // T2 completes after 1 ms: U = 0.25+0.1+1/14 = 0.421 → 0.5.
        let v = views(&[
            (InvState::Completed, 2.0, 8.0),
            (InvState::Completed, 1.0, 10.0),
            (InvState::Active, 0.0, 14.0),
        ]);
        let sys = SystemView {
            now: Time::from_ms(4.0),
            tasks: &tasks,
            machine: &machine,
            views: &v,
        };
        let idx = p.on_completion(TaskId(1), &sys);
        assert!((p.utilization_sum() - 0.421_428_571).abs() < 1e-6);
        assert_eq!(machine.point(idx).freq, 0.5);

        // t = 8: T1 re-released, worst case restored:
        // U = 0.375+0.1+0.0714 = 0.546 → 0.75.
        let v = views(&[
            (InvState::Active, 0.0, 16.0),
            (InvState::Completed, 1.0, 10.0),
            (InvState::Active, 0.5, 14.0),
        ]);
        let sys = SystemView {
            now: Time::from_ms(8.0),
            tasks: &tasks,
            machine: &machine,
            views: &v,
        };
        let idx = p.on_release(TaskId(0), &sys);
        assert!((p.utilization_sum() - 0.546_428_571).abs() < 1e-6);
        assert_eq!(machine.point(idx).freq, 0.75);
    }

    #[test]
    fn zero_usage_completion_drops_to_lowest() {
        let tasks = paper_set();
        let machine = Machine::machine0();
        let mut p = CcEdf::new();
        p.init(&tasks, &machine);
        let v = views(&[
            (InvState::Completed, 0.0, 8.0),
            (InvState::Completed, 0.0, 10.0),
            (InvState::Completed, 0.0, 14.0),
        ]);
        let sys = SystemView {
            now: Time::from_ms(1.0),
            tasks: &tasks,
            machine: &machine,
            views: &v,
        };
        p.on_completion(TaskId(0), &sys);
        p.on_completion(TaskId(1), &sys);
        let idx = p.on_completion(TaskId(2), &sys);
        assert_eq!(idx, machine.lowest());
        assert!(p.utilization_sum() < 1e-9);
    }

    #[test]
    fn idle_goes_to_lowest() {
        let machine = Machine::machine0();
        let p = CcEdf::new();
        assert_eq!(p.idle_point(&machine), 0);
    }

    #[test]
    fn guarantees_follow_edf_bound() {
        let p = CcEdf::new();
        assert!(p.guarantees(&paper_set()));
        let over = TaskSet::from_ms_pairs(&[(2.0, 1.5), (4.0, 3.0)]).expect("valid task set");
        assert!(!p.guarantees(&over));
    }
}
