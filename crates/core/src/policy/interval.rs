//! Interval-based throughput governor (baseline, *not* real-time safe).
//!
//! The DVS algorithms the paper positions itself against ([7, 23, 30] —
//! Weiser et al.'s PAST and its descendants) watch recent processor
//! utilization over an interval and nudge the frequency up when the system
//! was busy and down when it idled. They "result in close adaptation to
//! the workload and large energy savings, [but] are unsuitable for
//! real-time systems" (§5): nothing ties the chosen speed to any deadline.
//!
//! This implementation reproduces that class faithfully enough to measure
//! its failure: an exponentially-weighted utilization estimate updated at
//! every scheduling point, with raise/lower hysteresis thresholds. Use it
//! as the "what if we just used a normal governor" comparison in
//! experiments; its [`DvsPolicy::guarantees`] is always `false`.

use crate::machine::{Machine, PointIdx};
use crate::policy::DvsPolicy;
use crate::sched::SchedulerKind;
use crate::task::{TaskId, TaskSet};
use crate::time::{Time, Work, EPS};
use crate::view::SystemView;

/// Weiser-style interval governor.
#[derive(Debug, Clone)]
pub struct IntervalGovernor {
    /// EWMA smoothing factor for new observations, in `(0, 1]`.
    weight: f64,
    /// Raise speed when the estimate exceeds this busy fraction of the
    /// current frequency.
    raise_above: f64,
    /// Lower speed when the estimate falls below this busy fraction.
    lower_below: f64,
    utilization_estimate: f64,
    last_decision: Time,
    last_executed: Vec<(u64, Work)>,
    point: PointIdx,
}

impl Default for IntervalGovernor {
    fn default() -> IntervalGovernor {
        IntervalGovernor::new(0.3, 0.7, 0.5)
    }
}

impl IntervalGovernor {
    /// Creates a governor with the given EWMA weight and hysteresis
    /// thresholds (busy fractions of the current speed).
    ///
    /// # Panics
    ///
    /// Panics if the weight is outside `(0, 1]` or the thresholds are not
    /// `0 < lower_below < raise_above ≤ 1`.
    #[must_use]
    pub fn new(weight: f64, raise_above: f64, lower_below: f64) -> IntervalGovernor {
        assert!(weight > 0.0 && weight <= 1.0, "bad weight {weight}");
        assert!(
            0.0 < lower_below && lower_below < raise_above && raise_above <= 1.0,
            "bad thresholds ({lower_below}, {raise_above})"
        );
        IntervalGovernor {
            weight,
            raise_above,
            lower_below,
            utilization_estimate: 0.0,
            last_decision: Time::ZERO,
            last_executed: Vec::new(),
            point: 0,
        }
    }

    /// The current utilization estimate (busy work per unit time).
    #[must_use]
    pub fn utilization_estimate(&self) -> f64 {
        self.utilization_estimate
    }

    /// Total work executed since the last decision, from per-task deltas.
    fn work_since_last(&mut self, sys: &SystemView<'_>) -> Work {
        let mut total = Work::ZERO;
        for (state, view) in self.last_executed.iter_mut().zip(sys.views) {
            if state.0 != view.invocation {
                state.0 = view.invocation;
                state.1 = Work::ZERO;
            }
            total += (view.executed - state.1).clamp_non_negative();
            state.1 = view.executed;
        }
        total
    }

    fn decide(&mut self, sys: &SystemView<'_>) -> PointIdx {
        let dt = sys.now - self.last_decision;
        let work = self.work_since_last(sys);
        if dt.as_ms() > EPS {
            let observed = (work.as_ms() / dt.as_ms()).clamp(0.0, 1.0);
            self.utilization_estimate =
                (1.0 - self.weight) * self.utilization_estimate + self.weight * observed;
            self.last_decision = sys.now;
        }
        // Busy fraction relative to the speed we ran at.
        let speed = sys.machine.point(self.point).freq;
        let busy_fraction = (self.utilization_estimate / speed).clamp(0.0, 1.0);
        if busy_fraction > self.raise_above && self.point < sys.machine.highest() {
            self.point += 1;
        } else if busy_fraction < self.lower_below && self.point > 0 {
            self.point -= 1;
        }
        self.point
    }
}

impl DvsPolicy for IntervalGovernor {
    fn name(&self) -> &'static str {
        "interval"
    }

    fn scheduler(&self) -> SchedulerKind {
        SchedulerKind::Edf
    }

    fn init(&mut self, tasks: &TaskSet, machine: &Machine) -> PointIdx {
        self.utilization_estimate = 0.0;
        self.last_decision = Time::ZERO;
        self.last_executed = vec![(0, Work::ZERO); tasks.len()];
        // Governors wake up slow and react; start at the bottom.
        self.point = machine.lowest();
        self.point
    }

    fn on_release(&mut self, _task: TaskId, sys: &SystemView<'_>) -> PointIdx {
        self.decide(sys)
    }

    fn on_completion(&mut self, _task: TaskId, sys: &SystemView<'_>) -> PointIdx {
        self.decide(sys)
    }

    fn idle_point(&self, machine: &Machine) -> PointIdx {
        machine.lowest()
    }

    fn current_point(&self) -> PointIdx {
        self.point
    }

    fn guarantees(&self, _tasks: &TaskSet) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::{InvState, TaskView};

    fn paper_set() -> TaskSet {
        TaskSet::from_ms_pairs(&[(8.0, 3.0), (10.0, 3.0), (14.0, 1.0)]).expect("valid task set")
    }

    #[test]
    fn parameter_validation() {
        let g = IntervalGovernor::default();
        assert_eq!(g.name(), "interval");
    }

    #[test]
    #[should_panic(expected = "bad thresholds")]
    fn rejects_inverted_thresholds() {
        let _ = IntervalGovernor::new(0.3, 0.4, 0.6);
    }

    #[test]
    fn starts_at_the_bottom_and_never_guarantees() {
        let tasks = paper_set();
        let machine = Machine::machine0();
        let mut g = IntervalGovernor::default();
        assert_eq!(g.init(&tasks, &machine), machine.lowest());
        assert!(!g.guarantees(&tasks));
    }

    #[test]
    fn sustained_load_raises_speed_and_idle_lowers_it() {
        let tasks = paper_set();
        let machine = Machine::machine0();
        let mut g = IntervalGovernor::default();
        g.init(&tasks, &machine);
        // Simulate a long fully-busy stretch: T1 executes continuously.
        let mut views: Vec<TaskView> = tasks
            .tasks()
            .iter()
            .map(|t| TaskView {
                invocation: 1,
                state: InvState::Active,
                executed: Work::ZERO,
                deadline: t.period(),
                next_release: t.period(),
            })
            .collect();
        let mut point = 0;
        for step in 1..=20 {
            let now = step as f64;
            views[0].executed = Work::from_ms(now * 0.5); // busy at speed 0.5
            let sys = SystemView {
                now: Time::from_ms(now),
                tasks: &tasks,
                machine: &machine,
                views: &views,
            };
            point = g.on_completion(TaskId(0), &sys);
        }
        assert!(point > 0, "sustained load must raise the speed");
        assert!(g.utilization_estimate() > 0.3);

        // Now a long idle stretch drags it back down.
        let executed_frozen = views[0].executed;
        for step in 21..=60 {
            let now = step as f64;
            views[0].executed = executed_frozen;
            let sys = SystemView {
                now: Time::from_ms(now),
                tasks: &tasks,
                machine: &machine,
                views: &views,
            };
            point = g.on_completion(TaskId(0), &sys);
        }
        assert_eq!(point, 0, "idleness must lower the speed to the floor");
    }
}
