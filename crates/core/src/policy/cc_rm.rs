//! Cycle-conserving RM (§2.4, Figs. 5 and 6).
//!
//! Rather than re-running the (expensive) RM schedulability test online,
//! ccRM paces execution against the worst-case *statically-scaled* RM
//! schedule: as long as every task makes at least as much progress by the
//! next deadline as it would in that worst-case schedule, all deadlines are
//! met regardless of the operating frequency.
//!
//! Bookkeeping per task `i`:
//!
//! * `c_left_i` — worst-case remaining cycles of the current invocation
//!   (set to `C_i` on release, decremented as the task runs, zeroed on
//!   completion); obtained here from the engine's [`SystemView`].
//! * `d_i` — the share of the statically-scaled schedule's progress until
//!   the next deadline allotted to task `i`: on every release the cycles
//!   the statically-scaled processor would retire by the earliest deadline
//!   (`α·(D₁ − now)`) are dealt out in RM priority order, each task
//!   receiving at most `c_left_i`; `d_i` is decremented as the task runs
//!   and zeroed on completion.
//!
//! The frequency is then the lowest point that retires `Σ d_i` by the
//! earliest deadline.

use crate::analysis::{static_rm_point, RmTest};
use crate::machine::{Machine, PointIdx};
use crate::policy::{point_for_demand, scheduler_guarantees, DvsPolicy};
use crate::sched::SchedulerKind;
use crate::task::{TaskId, TaskSet};
use crate::time::Work;
use crate::view::SystemView;

/// Per-task progress bookkeeping.
#[derive(Debug, Clone, Copy, Default)]
struct TaskState {
    /// Remaining allotment from the statically-scaled schedule (`d_i`).
    d: Work,
    /// Invocation number at the last sync, to detect releases.
    last_invocation: u64,
    /// `executed` at the last sync, to compute execution deltas.
    last_executed: Work,
}

/// Cycle-conserving RM.
#[derive(Debug, Clone)]
pub struct CcRm {
    rm_test: RmTest,
    /// Frequency factor `α` chosen by static scaling for this task set.
    alpha: f64,
    states: Vec<TaskState>,
    point: PointIdx,
    /// End of the current pacing window (the `D₁` used by the last
    /// allocation/selection). In the periodic model a release always lands
    /// there; under sporadic arrivals the policy asks the engine for a
    /// review at this instant so the next window gets its allocation.
    planned_boundary: Option<crate::time::Time>,
}

impl CcRm {
    /// Creates the policy; `rm_test` selects the schedulability test used
    /// to derive the statically-scaled pace `α`.
    #[must_use]
    pub fn new(rm_test: RmTest) -> CcRm {
        CcRm {
            rm_test,
            alpha: 1.0,
            states: Vec::new(),
            point: 0,
            planned_boundary: None,
        }
    }

    /// The statically-scaled frequency factor `α` the policy paces against.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Current `Σ d_i` (exposed for inspection and tests).
    #[must_use]
    pub fn outstanding_allotment(&self) -> Work {
        self.states.iter().map(|s| s.d).sum()
    }

    /// Applies execution progress since the last callback: "during task
    /// execution, decrement `c_left_i` and `d_i`" (Fig. 6). `c_left` is
    /// derived from the view; only `d_i` needs explicit decrementing.
    fn sync(&mut self, sys: &SystemView<'_>) {
        for (state, view) in self.states.iter_mut().zip(sys.views) {
            if view.invocation != state.last_invocation {
                state.last_invocation = view.invocation;
                state.last_executed = Work::ZERO;
            }
            let delta = (view.executed - state.last_executed).clamp_non_negative();
            state.d = (state.d - delta).clamp_non_negative();
            state.last_executed = view.executed;
        }
    }

    /// Deals out `budget` cycles to tasks in RM priority order, each task
    /// receiving at most its `c_left` (Fig. 6 `allocate_cycles`).
    fn allocate(&mut self, budget: Work, sys: &SystemView<'_>) {
        let mut k = budget;
        for &id in sys.tasks.rm_order() {
            let c_left = sys.c_left(id);
            let share = c_left.min(k);
            self.states[id.0].d = share;
            k = (k - share).clamp_non_negative();
        }
    }

    /// Fig. 6 `select_frequency`: lowest point retiring `Σ d_i` by the
    /// earliest deadline.
    fn select(&mut self, sys: &SystemView<'_>) -> PointIdx {
        let boundary = sys.earliest_boundary();
        self.planned_boundary = Some(boundary);
        self.point = point_for_demand(
            sys.machine,
            self.outstanding_allotment(),
            boundary - sys.now,
        );
        self.point
    }

    /// Allocates the statically-scaled schedule's progress over the window
    /// up to the next deadline and selects the frequency — the release
    /// path and the sporadic-boundary review path share this step.
    fn reallocate(&mut self, sys: &SystemView<'_>) -> PointIdx {
        let horizon = sys.earliest_boundary() - sys.now;
        let budget = Work::from_ms((horizon.as_ms() * self.alpha).max(0.0));
        self.allocate(budget, sys);
        self.select(sys)
    }
}

impl DvsPolicy for CcRm {
    fn name(&self) -> &'static str {
        "ccRM"
    }

    fn scheduler(&self) -> SchedulerKind {
        SchedulerKind::Rm
    }

    fn init(&mut self, tasks: &TaskSet, machine: &Machine) -> PointIdx {
        self.alpha = static_rm_point(tasks, machine, self.rm_test)
            .map_or(1.0, |idx| machine.point(idx).freq);
        self.states = vec![TaskState::default(); tasks.len()];
        // The first release events will allocate and select; starting at
        // the statically-scaled point is always safe.
        self.point = machine.point_at_least(self.alpha);
        self.point
    }

    fn on_release(&mut self, _task: TaskId, sys: &SystemView<'_>) -> PointIdx {
        self.sync(sys);
        // Progress the statically-scaled schedule would make by the next
        // deadline: α · (D₁ − now) cycles.
        self.reallocate(sys)
    }

    fn on_completion(&mut self, task: TaskId, sys: &SystemView<'_>) -> PointIdx {
        self.sync(sys);
        self.states[task.0].d = Work::ZERO;
        self.select(sys)
    }

    fn review_at(&self) -> Option<crate::time::Time> {
        self.planned_boundary
    }

    fn on_review(&mut self, sys: &SystemView<'_>) -> PointIdx {
        self.sync(sys);
        self.reallocate(sys)
    }

    fn idle_point(&self, machine: &Machine) -> PointIdx {
        machine.lowest()
    }

    fn current_point(&self) -> PointIdx {
        self.point
    }

    fn guarantees(&self, tasks: &TaskSet) -> bool {
        scheduler_guarantees(SchedulerKind::Rm, tasks, self.rm_test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;
    use crate::view::{InvState, TaskView};

    fn paper_set() -> TaskSet {
        TaskSet::from_ms_pairs(&[(8.0, 3.0), (10.0, 3.0), (14.0, 1.0)]).expect("valid task set")
    }

    struct Harness {
        tasks: TaskSet,
        machine: Machine,
        views: Vec<TaskView>,
    }

    impl Harness {
        fn new() -> Harness {
            let tasks = paper_set();
            let views = tasks
                .tasks()
                .iter()
                .map(|t| TaskView {
                    invocation: 1,
                    state: InvState::Active,
                    executed: Work::ZERO,
                    deadline: t.period(),
                    next_release: t.period(),
                })
                .collect();
            Harness {
                tasks,
                machine: Machine::machine0(),
                views,
            }
        }

        fn sys(&self, now: f64) -> SystemView<'_> {
            SystemView {
                now: Time::from_ms(now),
                tasks: &self.tasks,
                machine: &self.machine,
                views: &self.views,
            }
        }

        fn run(&mut self, id: usize, executed: f64) {
            self.views[id].executed = Work::from_ms(executed);
        }

        fn complete(&mut self, id: usize) {
            self.views[id].state = InvState::Completed;
        }

        fn release(&mut self, id: usize, deadline: f64) {
            self.views[id].invocation += 1;
            self.views[id].state = InvState::Active;
            self.views[id].executed = Work::ZERO;
            self.views[id].deadline = Time::from_ms(deadline);
            self.views[id].next_release = Time::from_ms(deadline);
        }
    }

    /// Replays the scheduling points of Fig. 5 and checks every frequency
    /// decision: 1.0 → 0.75 → 0.5, then 1.0 at T1's re-release.
    #[test]
    fn fig5_frequency_steps() {
        let mut h = Harness::new();
        let mut p = CcRm::new(RmTest::default());
        // Static RM needs α = 1.0 for this set (Fig. 2).
        p.init(&h.tasks, &h.machine);
        assert_eq!(p.alpha(), 1.0);

        // t = 0: all three release. Budget = 8 cycles; allotment 3+3+1 = 7;
        // 7/8 → frequency 1.0 (Fig. 5b).
        let sys = h.sys(0.0);
        p.on_release(TaskId(0), &sys);
        p.on_release(TaskId(1), &sys);
        let idx = p.on_release(TaskId(2), &sys);
        assert!(p.outstanding_allotment().approx_eq(Work::from_ms(7.0)));
        assert_eq!(h.machine.point(idx).freq, 1.0);

        // T1 runs 2 ms at 1.0 and completes at t = 2. Remaining allotment
        // 3+1 = 4 over 6 ms → 0.75 (Fig. 5c).
        h.run(0, 2.0);
        h.complete(0);
        let sys = h.sys(2.0);
        let idx = p.on_completion(TaskId(0), &sys);
        assert!(p.outstanding_allotment().approx_eq(Work::from_ms(4.0)));
        assert_eq!(h.machine.point(idx).freq, 0.75);

        // T2 runs 1 ms at 0.75 (4/3 ms wall) and completes at t = 10/3.
        // Remaining allotment 1 over 14/3 ms → 0.5 (Fig. 5d).
        h.run(1, 1.0);
        h.complete(1);
        let sys = h.sys(10.0 / 3.0);
        let idx = p.on_completion(TaskId(1), &sys);
        assert!(p.outstanding_allotment().approx_eq(Work::from_ms(1.0)));
        assert_eq!(h.machine.point(idx).freq, 0.5);

        // T3 runs 1 ms at 0.5 (2 ms wall), completing at t = 16/3.
        h.run(2, 1.0);
        h.complete(2);
        let sys = h.sys(16.0 / 3.0);
        let idx = p.on_completion(TaskId(2), &sys);
        assert_eq!(idx, h.machine.lowest());

        // t = 8: T1 re-released. Next deadline is D2 = 10; budget = 2,
        // all of it allotted to T1 → 2/2 → frequency 1.0 (Fig. 5e).
        h.release(0, 16.0);
        let sys = h.sys(8.0);
        let idx = p.on_release(TaskId(0), &sys);
        assert!(p.outstanding_allotment().approx_eq(Work::from_ms(2.0)));
        assert_eq!(h.machine.point(idx).freq, 1.0);

        // T1 uses only 1 ms and completes at t = 9 → everything allotted
        // is done; frequency drops to the floor.
        h.run(0, 1.0);
        h.complete(0);
        let sys = h.sys(9.0);
        let idx = p.on_completion(TaskId(0), &sys);
        assert_eq!(idx, h.machine.lowest());

        // t = 10: T2 re-released; next deadline D3 = 14; budget 4, T2 gets
        // its full c_left = 3 → 3/4 → 0.75.
        h.release(1, 20.0);
        let sys = h.sys(10.0);
        let idx = p.on_release(TaskId(1), &sys);
        assert!(p.outstanding_allotment().approx_eq(Work::from_ms(3.0)));
        assert_eq!(h.machine.point(idx).freq, 0.75);
    }

    #[test]
    fn execution_decrements_allotment_on_sync() {
        let mut h = Harness::new();
        let mut p = CcRm::new(RmTest::default());
        p.init(&h.tasks, &h.machine);
        let sys = h.sys(0.0);
        p.on_release(TaskId(0), &sys);
        p.on_release(TaskId(1), &sys);
        p.on_release(TaskId(2), &sys);
        // T1 runs 1.5 ms then T2 completes having run 0 — the sync at T2's
        // completion must account T1's progress.
        h.run(0, 1.5);
        h.complete(1);
        let sys = h.sys(1.5);
        p.on_completion(TaskId(1), &sys);
        // d: T1 3−1.5 = 1.5, T2 zeroed, T3 1 → 2.5 outstanding.
        assert!(p.outstanding_allotment().approx_eq(Work::from_ms(2.5)));
    }

    #[test]
    fn alpha_tracks_rm_test_choice() {
        // A harmonic set at U = 1 is exactly RM-schedulable, so the exact
        // test paces at α = 1.0 while Liu–Layland refuses every point and
        // falls back to α = 1.0 as well — but at U = 0.75 they differ.
        let tasks = TaskSet::from_ms_pairs(&[(2.0, 0.75), (4.0, 1.5)]).expect("valid task set");
        let machine = Machine::machine0();
        let mut exact = CcRm::new(RmTest::SchedulingPoints);
        exact.init(&tasks, &machine);
        assert_eq!(exact.alpha(), 0.75);
        let mut ll = CcRm::new(RmTest::LiuLayland);
        ll.init(&tasks, &machine);
        // U = 0.75 vs LL bound 0.828·α: needs α = 1.0.
        assert_eq!(ll.alpha(), 1.0);
    }

    #[test]
    fn idle_goes_to_lowest() {
        let machine = Machine::machine0();
        let p = CcRm::new(RmTest::default());
        assert_eq!(p.idle_point(&machine), 0);
    }
}
