//! Look-ahead EDF (§2.5, Figs. 7 and 8) — the paper's most aggressive
//! RT-DVS algorithm.
//!
//! At every scheduling point the deferral step plans the interval up to the
//! earliest deadline in the system, `D₁`. Walking the tasks in *reverse*
//! EDF order (latest deadline first) it pushes as much of each task's
//! worst-case remaining work `c_left_i` as possible beyond `D₁` — into
//! `[D₁, D_i]` — while reserving worst-case utilization for every
//! earlier-deadline task's future invocations. Whatever cannot be deferred,
//! `x_i`, must execute before `D₁`; the operating point is the lowest one
//! that retires `s = Σ x_i` within `D₁ − now`.
//!
//! If tasks keep finishing early the deferred peak never materializes and
//! the system stays at low frequency; if they do use their worst case, the
//! reserved capacity forces a (guaranteed sufficient) high frequency later.

use crate::analysis::RmTest;
use crate::machine::{Machine, PointIdx};
use crate::policy::{point_for_demand, scheduler_guarantees, DvsPolicy};
use crate::sched::SchedulerKind;
use crate::task::{TaskId, TaskSet};
use crate::time::{Work, EPS};
use crate::view::SystemView;

/// Look-ahead EDF.
///
/// The algorithm is stateless between scheduling points — everything is
/// recomputed from the engine's [`SystemView`] — so the struct only caches
/// the current operating point.
#[derive(Debug, Clone, Default)]
pub struct LaEdf {
    point: PointIdx,
    /// The planning boundary `D1` of the last deferral: work was deferred
    /// past this instant on the promise of re-planning there, so the
    /// engine must grant a review at `D1` if no scheduling point happens
    /// first (only relevant under sporadic arrivals; in the periodic model
    /// a release always lands on `D1`).
    planned_d1: Option<crate::time::Time>,
    /// Scratch buffer for the reverse-EDF task ordering, kept to avoid a
    /// per-callback allocation.
    order: Vec<TaskId>,
}

impl LaEdf {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> LaEdf {
        LaEdf::default()
    }

    /// Fig. 8 `defer()`: the minimum work that must execute before the
    /// earliest deadline `D₁` for all future deadlines to remain feasible.
    ///
    /// Exposed for tests and instrumentation; engines only need the trait
    /// callbacks.
    #[must_use]
    pub fn work_due_before_next_deadline(&mut self, sys: &SystemView<'_>) -> Work {
        let d1 = sys.earliest_deadline();

        // Latest deadline first; ties in reverse id order so the loop as a
        // whole visits tasks in exact reverse EDF order.
        self.order.clear();
        self.order.extend(sys.iter().map(|(id, _)| id));
        self.order.sort_by(|&a, &b| {
            sys.view(b)
                .deadline
                .total_cmp(&sys.view(a).deadline)
                .then(b.0.cmp(&a.0))
        });

        // `u` starts at the total worst-case utilization; each iteration
        // swaps task i's worst-case reservation for its actual demand
        // spread over [D₁, D_i].
        let mut u: f64 = sys.tasks.total_utilization();
        let mut s = Work::ZERO;
        for &id in &self.order {
            u -= sys.tasks.task(id).utilization();
            // A task that has not been released yet (possible only with
            // offsets or deferred admission, an extension over the paper's
            // synchronous model) will still need its full worst case before
            // its first deadline — plan for it conservatively.
            let c_left = if sys.view(id).state == crate::view::InvState::Inactive {
                sys.tasks.task(id).wcet()
            } else {
                sys.c_left(id)
            };
            let span = (sys.view(id).deadline - d1).as_ms();
            if span > EPS {
                // Defer what fits into [D₁, D_i] at the residual capacity
                // (1 − u); the remainder x must run before D₁.
                let x = (c_left - Work::from_ms((1.0 - u) * span)).clamp_non_negative();
                u += (c_left - x).as_ms() / span;
                s += x;
            } else {
                // D_i == D₁: nothing can be deferred.
                s += c_left;
            }
        }
        s
    }

    fn select(&mut self, sys: &SystemView<'_>) -> PointIdx {
        let s = self.work_due_before_next_deadline(sys);
        let d1 = sys.earliest_deadline();
        self.planned_d1 = Some(d1);
        self.point = point_for_demand(sys.machine, s, d1 - sys.now);
        self.point
    }
}

impl DvsPolicy for LaEdf {
    fn name(&self) -> &'static str {
        "laEDF"
    }

    fn scheduler(&self) -> SchedulerKind {
        SchedulerKind::Edf
    }

    fn init(&mut self, _tasks: &TaskSet, machine: &Machine) -> PointIdx {
        // The release events at t = 0 run defer(); starting anywhere is
        // safe, so start at the bottom.
        self.point = machine.lowest();
        self.point
    }

    fn on_release(&mut self, _task: TaskId, sys: &SystemView<'_>) -> PointIdx {
        self.select(sys)
    }

    fn on_completion(&mut self, _task: TaskId, sys: &SystemView<'_>) -> PointIdx {
        self.select(sys)
    }

    fn review_at(&self) -> Option<crate::time::Time> {
        self.planned_d1
    }

    fn on_review(&mut self, sys: &SystemView<'_>) -> PointIdx {
        self.select(sys)
    }

    fn idle_point(&self, machine: &Machine) -> PointIdx {
        machine.lowest()
    }

    fn current_point(&self) -> PointIdx {
        self.point
    }

    fn guarantees(&self, tasks: &TaskSet) -> bool {
        scheduler_guarantees(SchedulerKind::Edf, tasks, RmTest::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;
    use crate::view::{InvState, TaskView};

    fn paper_set() -> TaskSet {
        TaskSet::from_ms_pairs(&[(8.0, 3.0), (10.0, 3.0), (14.0, 1.0)]).expect("valid task set")
    }

    struct Harness {
        tasks: TaskSet,
        machine: Machine,
        views: Vec<TaskView>,
    }

    impl Harness {
        fn new() -> Harness {
            let tasks = paper_set();
            let views = tasks
                .tasks()
                .iter()
                .map(|t| TaskView {
                    invocation: 1,
                    state: InvState::Active,
                    executed: Work::ZERO,
                    deadline: t.period(),
                    next_release: t.period(),
                })
                .collect();
            Harness {
                tasks,
                machine: Machine::machine0(),
                views,
            }
        }

        fn sys(&self, now: f64) -> SystemView<'_> {
            SystemView {
                now: Time::from_ms(now),
                tasks: &self.tasks,
                machine: &self.machine,
                views: &self.views,
            }
        }
    }

    /// Replays the scheduling points of Fig. 7 and checks the planned work
    /// and selected frequencies: 0.75 at t = 0, 0.5 after T1 completes,
    /// 0.5 after T2 completes, 0.5 at T1's re-release.
    #[test]
    fn fig7_decision_sequence() {
        let mut h = Harness::new();
        let mut p = LaEdf::new();
        p.init(&h.tasks, &h.machine);

        // t = 0 (Fig. 7b): defer T3 fully, part of T2; s = 3 + 25/12.
        let sys = h.sys(0.0);
        let s = p.work_due_before_next_deadline(&sys);
        assert!((s.as_ms() - (3.0 + 25.0 / 12.0)).abs() < 1e-9, "s = {s}");
        let idx = p.on_release(TaskId(0), &sys);
        assert_eq!(h.machine.point(idx).freq, 0.75);

        // T1 completes at t = 8/3 after 2 ms of actual work (Fig. 7c):
        // s = 25/12 over 16/3 ms → required 0.39 → 0.5.
        h.views[0].state = InvState::Completed;
        h.views[0].executed = Work::from_ms(2.0);
        let sys = h.sys(8.0 / 3.0);
        let idx = p.on_completion(TaskId(0), &sys);
        assert_eq!(h.machine.point(idx).freq, 0.5);

        // T2 runs 1 ms at 0.5 (2 ms wall) and completes at t = 14/3
        // (Fig. 7d): nothing must run before D1 → floor frequency.
        h.views[1].state = InvState::Completed;
        h.views[1].executed = Work::from_ms(1.0);
        let sys = h.sys(14.0 / 3.0);
        let s = p.work_due_before_next_deadline(&sys);
        assert!(s.as_ms().abs() < 1e-9);
        let idx = p.on_completion(TaskId(1), &sys);
        assert_eq!(idx, h.machine.lowest());

        // T3 then runs at 0.5 and completes at t = 20/3.
        h.views[2].state = InvState::Completed;
        h.views[2].executed = Work::from_ms(1.0);
        let sys = h.sys(20.0 / 3.0);
        let idx = p.on_completion(TaskId(2), &sys);
        assert_eq!(idx, h.machine.lowest());

        // t = 8 (Fig. 7e): T1 re-released (deadline 16); D1 is now 10.
        // T1's 3 ms fit into [10, 16] under the other tasks' reservations
        // → s = 0 → floor frequency; EDF is work-conserving so T1 runs at
        // 0.5.
        h.views[0] = TaskView {
            invocation: 2,
            state: InvState::Active,
            executed: Work::ZERO,
            deadline: Time::from_ms(16.0),
            next_release: Time::from_ms(16.0),
        };
        let sys = h.sys(8.0);
        let s = p.work_due_before_next_deadline(&sys);
        assert!(s.as_ms().abs() < 1e-9, "s = {s}");
        let idx = p.on_release(TaskId(0), &sys);
        assert_eq!(idx, h.machine.lowest());
    }

    /// With every task at its worst case and utilization 1.0, nothing can
    /// be deferred below full speed at the critical instant.
    #[test]
    fn full_utilization_demands_full_speed() {
        let tasks = TaskSet::from_ms_pairs(&[(4.0, 2.0), (8.0, 4.0)]).expect("valid task set");
        let machine = Machine::machine0();
        let views: Vec<TaskView> = tasks
            .tasks()
            .iter()
            .map(|t| TaskView {
                invocation: 1,
                state: InvState::Active,
                executed: Work::ZERO,
                deadline: t.period(),
                next_release: t.period(),
            })
            .collect();
        let sys = SystemView {
            now: Time::ZERO,
            tasks: &tasks,
            machine: &machine,
            views: &views,
        };
        let mut p = LaEdf::new();
        p.init(&tasks, &machine);
        // s = 2 (T1) + 2 (T2's share that cannot defer past t=4 at zero
        // residual capacity) = 4 over 4 ms → 1.0.
        let s = p.work_due_before_next_deadline(&sys);
        assert!((s.as_ms() - 4.0).abs() < 1e-9);
        assert_eq!(p.on_release(TaskId(0), &sys), machine.highest());
    }

    #[test]
    fn all_completed_plans_zero_work() {
        let mut h = Harness::new();
        for v in &mut h.views {
            v.state = InvState::Completed;
            v.executed = Work::from_ms(0.5);
        }
        let mut p = LaEdf::new();
        p.init(&h.tasks, &h.machine);
        let sys = h.sys(5.0);
        assert_eq!(p.work_due_before_next_deadline(&sys), Work::ZERO);
    }

    #[test]
    fn idle_goes_to_lowest() {
        let machine = Machine::machine0();
        let p = LaEdf::new();
        assert_eq!(p.idle_point(&machine), 0);
    }

    #[test]
    fn guarantees_follow_edf_bound() {
        let p = LaEdf::new();
        assert!(p.guarantees(&paper_set()));
        let over = TaskSet::from_ms_pairs(&[(2.0, 1.5), (4.0, 3.0)]).expect("valid task set");
        assert!(!p.guarantees(&over));
    }
}
