//! The RT-DVS policies of the paper (§2.3–§2.5) behind one trait.
//!
//! A [`DvsPolicy`] couples a real-time scheduler choice (EDF or RM) with a
//! rule for picking the processor operating point at every scheduling
//! point. The execution engine calls [`DvsPolicy::on_release`] and
//! [`DvsPolicy::on_completion`] exactly as the paper's modified OS would —
//! at most two frequency/voltage switches per task per invocation — and
//! honors [`DvsPolicy::idle_point`] while the ready queue is empty (the
//! dynamic schemes halt at the lowest point, the static ones stay put,
//! §3.2 "Varying idle level").
//!
//! | Policy | Scheduler | Rule |
//! |---|---|---|
//! | [`PlainDvs`] | either | always maximum frequency (the non-DVS baseline) |
//! | [`StaticDvs`] | either | lowest point passing the scaled schedulability test (§2.3) |
//! | [`CcEdf`] | EDF | utilization test on actual usage of completed invocations (§2.4) |
//! | [`CcRm`] | RM | pace the statically-scaled worst-case RM schedule (§2.4) |
//! | [`LaEdf`] | EDF | defer work past the next deadline, run the rest slowly (§2.5) |

mod cc_edf;
mod cc_rm;
mod interval;
mod la_edf;
mod manual;
mod plain;
mod static_scale;
mod stochastic;

pub use cc_edf::CcEdf;
pub use cc_rm::CcRm;
pub use interval::IntervalGovernor;
pub use la_edf::LaEdf;
pub use manual::ManualDvs;
pub use plain::PlainDvs;
pub use static_scale::StaticDvs;
pub use stochastic::StochasticEdf;

use crate::analysis::{edf_feasible_at, rm_feasible_at, RmTest};
use crate::machine::{Machine, PointIdx};
use crate::sched::SchedulerKind;
use crate::task::{TaskId, TaskSet};
use crate::time::{Time, Work, EPS};
use crate::view::SystemView;

/// A dynamic-voltage-scaling policy coupled to a real-time scheduler.
///
/// Engines drive a policy as follows: one call to [`DvsPolicy::init`] with
/// the task set and machine, then one [`DvsPolicy::on_release`] /
/// [`DvsPolicy::on_completion`] call per task release/completion event (in
/// event order), each returning the operating point to use from that moment
/// on. While no task is ready the engine runs at [`DvsPolicy::idle_point`]
/// and returns to [`DvsPolicy::current_point`] when work arrives.
pub trait DvsPolicy {
    /// Display name matching the paper's figure legends (e.g. "laEDF").
    fn name(&self) -> &'static str;

    /// The real-time scheduler this policy pairs with.
    fn scheduler(&self) -> SchedulerKind;

    /// Resets internal state for a task set and machine and returns the
    /// initial operating point.
    fn init(&mut self, tasks: &TaskSet, machine: &Machine) -> PointIdx;

    /// Called when `task` is released; returns the operating point to use.
    fn on_release(&mut self, task: TaskId, sys: &SystemView<'_>) -> PointIdx;

    /// Called when `task` completes its invocation (its actual usage is
    /// `sys.view(task).executed`); returns the operating point to use.
    fn on_completion(&mut self, task: TaskId, sys: &SystemView<'_>) -> PointIdx;

    /// The next instant by which the policy needs a review callback even
    /// if no release or completion happens before then, or `None`.
    ///
    /// In the paper's strictly periodic model every deadline coincides
    /// with a release, so scheduling points alone suffice and this always
    /// stays `None`. Under sporadic arrivals the look-ahead algorithm
    /// defers work past the earliest deadline `D1` *counting on
    /// re-planning there* — so it requests a review at `D1`; the engine
    /// must call [`DvsPolicy::on_review`] no later than that instant.
    fn review_at(&self) -> Option<Time> {
        None
    }

    /// Review callback (see [`DvsPolicy::review_at`]); returns the
    /// operating point to use from this moment on.
    fn on_review(&mut self, sys: &SystemView<'_>) -> PointIdx {
        let _ = sys;
        self.current_point()
    }

    /// The operating point to halt at while the ready queue is empty.
    fn idle_point(&self, machine: &Machine) -> PointIdx;

    /// The most recently selected operating point.
    fn current_point(&self) -> PointIdx;

    /// Whether this policy can guarantee all deadlines for `tasks` (the
    /// admission test condition C1 of §2.2 for the paired scheduler).
    fn guarantees(&self, tasks: &TaskSet) -> bool;
}

/// Shared `select frequency` step: the lowest point able to retire `work`
/// within `horizon`, saturating at the maximum point when the demand is
/// infeasible (or the horizon empty with work pending).
#[must_use]
pub fn point_for_demand(machine: &Machine, work: Work, horizon: Time) -> PointIdx {
    if !work.is_positive() {
        return machine.lowest();
    }
    if horizon.as_ms() <= EPS {
        return machine.highest();
    }
    machine.point_at_least(work.as_ms() / horizon.as_ms())
}

/// Constructor-style enumeration of every available policy, used by the
/// simulator, the experiment drivers, and the kernel's module loader. The
/// first seven are the paper's; the last two are documented extensions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyKind {
    /// Plain EDF, no DVS (the paper's "none" baseline).
    PlainEdf,
    /// Plain RM, no DVS.
    PlainRm,
    /// Statically-scaled EDF.
    StaticEdf,
    /// Statically-scaled RM with the given schedulability test.
    StaticRm(RmTest),
    /// Cycle-conserving EDF.
    CcEdf,
    /// Cycle-conserving RM (paced against static scaling with the given
    /// test).
    CcRm(RmTest),
    /// Look-ahead EDF.
    LaEdf,
    /// Extension: statistical (quantile-reservation) EDF with the given
    /// confidence — the paper's §6 future-work direction. Probabilistic
    /// deadline guarantees only.
    StochasticEdf {
        /// Quantile of observed execution times to reserve, in `(0, 1]`.
        confidence: f64,
    },
    /// Baseline: a deadline-oblivious interval/throughput governor in the
    /// style the paper argues against (§5). No deadline guarantees.
    Interval,
    /// Manual pin to one operating point under the given scheduler (the
    /// prototype's procfs knob, §4.2). No deadline guarantees.
    Manual {
        /// The scheduler to run under.
        scheduler: SchedulerKind,
        /// The pinned operating point (clamped to the machine).
        point: usize,
    },
}

impl PolicyKind {
    /// The six policies evaluated in the paper's figures, in legend order:
    /// EDF, StaticRM, StaticEDF, ccEDF, ccRM, laEDF.
    #[must_use]
    pub fn paper_six() -> [PolicyKind; 6] {
        [
            PolicyKind::PlainEdf,
            PolicyKind::StaticRm(RmTest::default()),
            PolicyKind::StaticEdf,
            PolicyKind::CcEdf,
            PolicyKind::CcRm(RmTest::default()),
            PolicyKind::LaEdf,
        ]
    }

    /// Instantiates the policy.
    #[must_use]
    pub fn build(self) -> Box<dyn DvsPolicy + Send> {
        match self {
            PolicyKind::PlainEdf => Box::new(PlainDvs::new(SchedulerKind::Edf)),
            PolicyKind::PlainRm => Box::new(PlainDvs::new(SchedulerKind::Rm)),
            PolicyKind::StaticEdf => Box::new(StaticDvs::edf()),
            PolicyKind::StaticRm(test) => Box::new(StaticDvs::rm(test)),
            PolicyKind::CcEdf => Box::new(CcEdf::new()),
            PolicyKind::CcRm(test) => Box::new(CcRm::new(test)),
            PolicyKind::LaEdf => Box::new(LaEdf::new()),
            PolicyKind::StochasticEdf { confidence } => Box::new(StochasticEdf::new(confidence)),
            PolicyKind::Interval => Box::new(IntervalGovernor::default()),
            PolicyKind::Manual { scheduler, point } => Box::new(ManualDvs::new(scheduler, point)),
        }
    }

    /// Display name matching the paper's figure legends.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::PlainEdf => "EDF",
            PolicyKind::PlainRm => "RM",
            PolicyKind::StaticEdf => "StaticEDF",
            PolicyKind::StaticRm(_) => "StaticRM",
            PolicyKind::CcEdf => "ccEDF",
            PolicyKind::CcRm(_) => "ccRM",
            PolicyKind::LaEdf => "laEDF",
            PolicyKind::StochasticEdf { .. } => "stochEDF",
            PolicyKind::Interval => "interval",
            PolicyKind::Manual { .. } => "manual",
        }
    }

    /// The scheduler this policy kind pairs with.
    #[must_use]
    pub fn scheduler(self) -> SchedulerKind {
        match self {
            PolicyKind::PlainEdf
            | PolicyKind::StaticEdf
            | PolicyKind::CcEdf
            | PolicyKind::LaEdf
            | PolicyKind::StochasticEdf { .. }
            | PolicyKind::Interval => SchedulerKind::Edf,
            PolicyKind::PlainRm | PolicyKind::StaticRm(_) | PolicyKind::CcRm(_) => {
                SchedulerKind::Rm
            }
            PolicyKind::Manual { scheduler, .. } => scheduler,
        }
    }
}

/// The admission condition C1 for a scheduler at maximum frequency:
/// EDF needs `U ≤ 1`, RM needs the chosen RM test to pass at `α = 1`.
#[must_use]
pub fn scheduler_guarantees(kind: SchedulerKind, tasks: &TaskSet, rm_test: RmTest) -> bool {
    match kind {
        SchedulerKind::Edf => edf_feasible_at(tasks, 1.0),
        SchedulerKind::Rm => rm_feasible_at(tasks, 1.0, rm_test),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_for_demand_basic() {
        let m = Machine::machine0();
        // No work: lowest point regardless of horizon.
        assert_eq!(
            point_for_demand(&m, Work::ZERO, Time::from_ms(0.0)),
            m.lowest()
        );
        // 3 work in 8 ms → 0.375 → 0.5 point.
        assert_eq!(
            point_for_demand(&m, Work::from_ms(3.0), Time::from_ms(8.0)),
            0
        );
        // 5.083 work in 8 ms → 0.635 → 0.75 point (Fig. 7b).
        assert_eq!(
            point_for_demand(&m, Work::from_ms(5.083), Time::from_ms(8.0)),
            1
        );
        // Demand above 1.0 saturates.
        assert_eq!(
            point_for_demand(&m, Work::from_ms(9.0), Time::from_ms(8.0)),
            2
        );
        // Pending work with an empty horizon also saturates.
        assert_eq!(point_for_demand(&m, Work::from_ms(1.0), Time::ZERO), 2);
    }

    #[test]
    fn paper_six_names_and_schedulers() {
        let names: Vec<&str> = PolicyKind::paper_six().iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec!["EDF", "StaticRM", "StaticEDF", "ccEDF", "ccRM", "laEDF"]
        );
        assert_eq!(PolicyKind::LaEdf.scheduler(), SchedulerKind::Edf);
        assert_eq!(
            PolicyKind::CcRm(RmTest::default()).scheduler(),
            SchedulerKind::Rm
        );
    }

    #[test]
    fn build_produces_matching_policies() {
        for kind in PolicyKind::paper_six() {
            let policy = kind.build();
            assert_eq!(policy.name(), kind.name());
            assert_eq!(policy.scheduler(), kind.scheduler());
        }
    }

    #[test]
    fn scheduler_guarantees_edf_vs_rm() {
        // The paper's example set: EDF-feasible, RM-feasible only at 1.0.
        let set = TaskSet::from_ms_pairs(&[(8.0, 3.0), (10.0, 3.0), (14.0, 1.0)])
            .expect("valid task set");
        assert!(scheduler_guarantees(
            SchedulerKind::Edf,
            &set,
            RmTest::default()
        ));
        assert!(scheduler_guarantees(
            SchedulerKind::Rm,
            &set,
            RmTest::default()
        ));
        // A set schedulable under EDF but not under RM.
        let tight = TaskSet::from_ms_pairs(&[(10.0, 5.0), (14.0, 6.9)]).expect("valid task set");
        assert!(scheduler_guarantees(
            SchedulerKind::Edf,
            &tight,
            RmTest::default()
        ));
        assert!(!scheduler_guarantees(
            SchedulerKind::Rm,
            &tight,
            RmTest::SchedulingPoints
        ));
    }
}
