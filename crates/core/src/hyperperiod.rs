//! Hyperperiod computation.
//!
//! For a synchronous periodic task set the schedule repeats with the least
//! common multiple of the periods; simulating exactly one hyperperiod
//! therefore captures the steady state, and energy over `k` hyperperiods
//! is exactly `k` times the energy over one. Periods are `f64`
//! milliseconds, so the LCM is computed on a fixed sub-nanosecond grid and
//! only returned when every period sits on that grid (which all practical
//! task sets do).

use crate::task::TaskSet;
use crate::time::Time;

/// Resolution of the integer grid: periods are scaled to units of 1 ps.
const GRID_PER_MS: f64 = 1e9;

/// Largest hyperperiod reported, in grid units (≈ 18 hours); beyond this
/// the LCM is useless for simulation and `None` is returned.
const MAX_GRID: u128 = (GRID_PER_MS as u128) * 1000 * 3600 * 18;

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// The hyperperiod (LCM of all periods) of `tasks`, or `None` if a period
/// does not sit on the picosecond grid or the LCM exceeds ≈ 18 hours.
///
/// Release offsets do not change the cycle length, only its phase; the
/// steady-state schedule still repeats every hyperperiod once all offsets
/// have passed.
#[must_use]
pub fn hyperperiod(tasks: &TaskSet) -> Option<Time> {
    let mut lcm: u128 = 1;
    for task in tasks.tasks() {
        let scaled = task.period().as_ms() * GRID_PER_MS;
        let grid = scaled.round();
        if (scaled - grid).abs() > 1e-3 || grid <= 0.0 || grid > MAX_GRID as f64 {
            return None;
        }
        let g = grid as u128;
        lcm = lcm / gcd(lcm, g) * g;
        if lcm > MAX_GRID {
            return None;
        }
    }
    Some(Time::from_ms(lcm as f64 / GRID_PER_MS))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_set_hyperperiod() {
        // lcm(8, 10, 14) = 280.
        let set = TaskSet::from_ms_pairs(&[(8.0, 3.0), (10.0, 3.0), (14.0, 1.0)])
            .expect("valid task set");
        assert_eq!(
            hyperperiod(&set).expect("hyperperiod exists").as_ms(),
            280.0
        );
    }

    #[test]
    fn harmonic_set() {
        let set =
            TaskSet::from_ms_pairs(&[(2.0, 0.5), (4.0, 1.0), (8.0, 2.0)]).expect("valid task set");
        assert_eq!(hyperperiod(&set).expect("hyperperiod exists").as_ms(), 8.0);
    }

    #[test]
    fn fractional_periods_on_grid() {
        let set = TaskSet::from_ms_pairs(&[(2.5, 1.0), (4.0, 1.0)]).expect("valid task set");
        assert_eq!(hyperperiod(&set).expect("hyperperiod exists").as_ms(), 20.0);
    }

    #[test]
    fn coprime_sub_millisecond_periods() {
        let set =
            TaskSet::from_ms_pairs(&[(0.003, 0.001), (0.007, 0.002)]).expect("valid task set");
        assert!((hyperperiod(&set).expect("hyperperiod exists").as_ms() - 0.021).abs() < 1e-12);
    }

    #[test]
    fn absurd_lcm_returns_none() {
        // Near-coprime long periods blow past the cap.
        let set = TaskSet::from_ms_pairs(&[(999.983, 1.0), (999.979, 1.0), (999.961, 1.0)])
            .expect("valid task set");
        assert_eq!(hyperperiod(&set), None);
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
    }
}
