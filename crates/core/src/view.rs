//! Runtime state snapshots handed to DVS policies at scheduling points.
//!
//! The paper's dynamic algorithms (ccEDF, ccRM, laEDF) are invoked by the
//! OS at every task release and completion. They need to see, per task, the
//! progress of the current invocation and its absolute deadline — nothing
//! engine-specific. Execution engines build a [`SystemView`] from their own
//! state and pass it to the policy callbacks.

use crate::machine::Machine;
use crate::task::{TaskId, TaskSet};
use crate::time::{Time, Work};

/// Lifecycle state of a task's current invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvState {
    /// The task has never been released (only possible before its offset).
    Inactive,
    /// The current invocation has been released and has work outstanding.
    Active,
    /// The current invocation has completed; the task is waiting for its
    /// next release. Its `deadline` still refers to the completed
    /// invocation's deadline (= the next release time), which is what the
    /// look-ahead algorithm plans against.
    Completed,
}

/// Per-task runtime snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskView {
    /// How many invocations have been released so far (the current one
    /// included); 0 while [`InvState::Inactive`].
    pub invocation: u64,
    /// Invocation lifecycle state.
    pub state: InvState,
    /// Work executed so far in the current invocation (resets to zero at
    /// each release).
    pub executed: Work,
    /// Absolute deadline of the current invocation; for `Inactive` tasks,
    /// the deadline their first invocation will have.
    pub deadline: Time,
    /// Next release time.
    pub next_release: Time,
}

impl TaskView {
    /// Worst-case remaining computation for the current invocation
    /// (`c_left_i` in the paper): `C_i − executed`, zero once completed.
    #[must_use]
    pub fn c_left(&self, wcet: Work) -> Work {
        match self.state {
            InvState::Active => (wcet - self.executed).clamp_non_negative(),
            InvState::Inactive | InvState::Completed => Work::ZERO,
        }
    }
}

/// System-wide snapshot at a scheduling point.
#[derive(Debug, Clone, Copy)]
pub struct SystemView<'a> {
    /// Current time.
    pub now: Time,
    /// The (static) task set.
    pub tasks: &'a TaskSet,
    /// The machine being scheduled on.
    pub machine: &'a Machine,
    /// One view per task, indexed by [`TaskId`].
    pub views: &'a [TaskView],
}

impl<'a> SystemView<'a> {
    /// The view for one task.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn view(&self, id: TaskId) -> &TaskView {
        &self.views[id.0]
    }

    /// `c_left_i` for one task.
    #[must_use]
    pub fn c_left(&self, id: TaskId) -> Work {
        self.views[id.0].c_left(self.tasks.task(id).wcet())
    }

    /// The earliest current-invocation deadline at or after `now` (`D_1`
    /// in the paper's look-ahead algorithm; the "next task deadline" in
    /// ccRM).
    ///
    /// Completed invocations still contribute their deadline — the paper's
    /// worked example (Fig. 7d) plans against `D1 = 8` after `T1` has
    /// completed — and `Inactive` tasks contribute their first deadline.
    /// Deadlines at or before `now` are excluded: as a *planning boundary*
    /// a lapsed (or exactly-current) deadline is vacuous — deferring work
    /// "past now" defers nothing — and under sporadic arrivals a completed
    /// invocation's deadline can lapse before the next release, which
    /// would otherwise corrupt the horizon. In the strictly periodic model
    /// a deadline is a release, so after the releases at an instant are
    /// processed every deadline is strictly in the future and the filter
    /// never changes the paper's behavior.
    #[must_use]
    pub fn earliest_deadline(&self) -> Time {
        self.views
            .iter()
            .map(|v| v.deadline)
            .filter(|d| d.as_ms() > self.now.as_ms() + crate::time::EPS)
            .reduce(Time::min)
            // No future deadline (possible only between callbacks with an
            // empty system); degenerate to an empty horizon.
            .unwrap_or(self.now)
    }

    /// The earliest future scheduling boundary: the first deadline *or
    /// release* strictly after `now`.
    ///
    /// The cycle-conserving RM pacing window must not span a future
    /// release — a higher-priority arrival inside the window would claim
    /// processor time the window's allocation knows nothing about. In the
    /// strictly periodic model the earliest deadline *is* the earliest
    /// release, so this equals [`SystemView::earliest_deadline`] there;
    /// they diverge only under sporadic arrivals.
    #[must_use]
    pub fn earliest_boundary(&self) -> Time {
        let next_release = self
            .views
            .iter()
            .map(|v| v.next_release)
            .filter(|t| t.as_ms() > self.now.as_ms() + crate::time::EPS)
            .reduce(Time::min);
        let deadline_boundary = self.earliest_deadline();
        match next_release {
            Some(release) => deadline_boundary.min(release),
            None => deadline_boundary,
        }
    }

    /// Iterates `(TaskId, &TaskView)`.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &TaskView)> {
        self.views.iter().enumerate().map(|(i, v)| (TaskId(i), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(state: InvState, executed: f64, deadline: f64) -> TaskView {
        TaskView {
            invocation: 1,
            state,
            executed: Work::from_ms(executed),
            deadline: Time::from_ms(deadline),
            next_release: Time::from_ms(deadline),
        }
    }

    #[test]
    fn c_left_tracks_progress() {
        let wcet = Work::from_ms(3.0);
        assert_eq!(view(InvState::Active, 0.0, 8.0).c_left(wcet).as_ms(), 3.0);
        assert_eq!(view(InvState::Active, 1.25, 8.0).c_left(wcet).as_ms(), 1.75);
        assert_eq!(view(InvState::Completed, 2.0, 8.0).c_left(wcet), Work::ZERO);
        assert_eq!(view(InvState::Inactive, 0.0, 8.0).c_left(wcet), Work::ZERO);
    }

    #[test]
    fn c_left_clamps_overrun() {
        // If an engine lets a task overrun its WCET, c_left floors at zero
        // rather than going negative.
        let wcet = Work::from_ms(3.0);
        assert_eq!(view(InvState::Active, 4.0, 8.0).c_left(wcet), Work::ZERO);
    }

    #[test]
    fn earliest_deadline_includes_completed_tasks() {
        let tasks = TaskSet::from_ms_pairs(&[(8.0, 3.0), (10.0, 3.0)]).expect("valid task set");
        let machine = Machine::machine0();
        let views = vec![
            view(InvState::Completed, 3.0, 8.0),
            view(InvState::Active, 0.0, 10.0),
        ];
        let sys = SystemView {
            now: Time::from_ms(4.0),
            tasks: &tasks,
            machine: &machine,
            views: &views,
        };
        assert_eq!(sys.earliest_deadline().as_ms(), 8.0);
        assert_eq!(sys.c_left(TaskId(0)), Work::ZERO);
        assert_eq!(sys.c_left(TaskId(1)).as_ms(), 3.0);
    }

    #[test]
    fn earliest_deadline_skips_lapsed_and_current_deadlines() {
        let tasks = TaskSet::from_ms_pairs(&[(8.0, 3.0), (10.0, 3.0)]).expect("valid task set");
        let machine = Machine::machine0();
        // T1's deadline has lapsed (sporadic gap); T2's is exactly now.
        let mut views = vec![
            view(InvState::Completed, 3.0, 5.0),
            view(InvState::Completed, 2.0, 9.0),
        ];
        let sys = SystemView {
            now: Time::from_ms(9.0),
            tasks: &tasks,
            machine: &machine,
            views: &views,
        };
        // No strictly future deadline → empty horizon.
        assert_eq!(sys.earliest_deadline(), Time::from_ms(9.0));
        // With one strictly future deadline, it wins.
        views[1] = view(InvState::Active, 0.0, 12.0);
        let sys = SystemView {
            now: Time::from_ms(9.0),
            tasks: &tasks,
            machine: &machine,
            views: &views,
        };
        assert_eq!(sys.earliest_deadline().as_ms(), 12.0);
    }

    #[test]
    fn earliest_boundary_caps_at_next_release() {
        let tasks = TaskSet::from_ms_pairs(&[(8.0, 3.0), (10.0, 3.0)]).expect("valid task set");
        let machine = Machine::machine0();
        // T1: active with deadline 20. T2: completed, deadline lapsed, but
        // its *next release* at 12 bounds the pacing window.
        let views = vec![
            TaskView {
                invocation: 2,
                state: InvState::Active,
                executed: Work::ZERO,
                deadline: Time::from_ms(20.0),
                next_release: Time::from_ms(25.0),
            },
            TaskView {
                invocation: 1,
                state: InvState::Completed,
                executed: Work::from_ms(1.0),
                deadline: Time::from_ms(9.0),
                next_release: Time::from_ms(12.0),
            },
        ];
        let sys = SystemView {
            now: Time::from_ms(10.0),
            tasks: &tasks,
            machine: &machine,
            views: &views,
        };
        assert_eq!(sys.earliest_deadline().as_ms(), 20.0);
        assert_eq!(sys.earliest_boundary().as_ms(), 12.0);
    }

    #[test]
    fn boundary_equals_deadline_in_the_periodic_model() {
        // With deadline == next_release (the paper's model), the two
        // horizons coincide.
        let tasks = TaskSet::from_ms_pairs(&[(8.0, 3.0), (10.0, 3.0)]).expect("valid task set");
        let machine = Machine::machine0();
        let views = vec![
            view(InvState::Completed, 3.0, 8.0),
            view(InvState::Active, 0.0, 10.0),
        ];
        let sys = SystemView {
            now: Time::from_ms(4.0),
            tasks: &tasks,
            machine: &machine,
            views: &views,
        };
        assert_eq!(sys.earliest_boundary(), sys.earliest_deadline());
    }
}
