//! Invariant audit layer for the RT-DVS simulator.
//!
//! The simulator can journal a full [`rtdvs_sim::trace::Trace`] of a run:
//! every release (with the sampled actual computation time), completion,
//! miss, and review grant, plus the processor segments between them. This
//! crate replays that journal against a fresh policy instance and checks
//! the guarantees of Pillai & Shin (SOSP 2001) as machine-checked rules:
//!
//! - no deadline miss when the policy's admission test passed (§2.2),
//! - at most two operating-point switches per invocation (§2.5, §4.1),
//! - the selected frequency always covers the committed demand
//!   (§2.3–§2.5),
//! - ccEDF's utilization bookkeeping sums back to the worst case on every
//!   release (§2.4, Fig. 4),
//! - ccRM's pacing never exceeds the statically-scaled schedule's
//!   allotment (§2.4, Fig. 6),
//! - laEDF never defers work that is due before the earliest deadline
//!   (§2.5, Fig. 8),
//! - dynamic schemes idle at the lowest operating point (§3.2).
//!
//! Each broken invariant is reported as a structured
//! [`Violation`] — `{ time, task, rule, details }` — so tests and CI can
//! assert on exactly which guarantee failed and when.
//!
//! # Quick start
//!
//! ```
//! use rtdvs_audit::audit_run;
//! use rtdvs_core::example::table2_task_set;
//! use rtdvs_core::machine::Machine;
//! use rtdvs_core::policy::PolicyKind;
//! use rtdvs_core::time::Time;
//! use rtdvs_sim::config::SimConfig;
//!
//! let tasks = table2_task_set();
//! let machine = Machine::machine0();
//! let cfg = SimConfig::new(Time::from_ms(160.0));
//! let (report, violations) = audit_run(&tasks, &machine, PolicyKind::LaEdf, &cfg);
//! assert!(report.all_deadlines_met());
//! assert!(violations.is_empty(), "{violations:?}");
//! ```

mod availability;
mod classify;
mod kernel_replay;
mod replay;
mod violation;

pub use availability::{audit_availability, AvailabilityPolicy};
pub use classify::{
    classify_misses, fault_induced_misses, policy_bug_misses, ClassifiedMiss, MissClass,
};
pub use kernel_replay::{audit_kernel_log, audit_tenant_isolation, TenantStanding};
pub use replay::{audit_run, TraceAuditor};
pub use violation::{Rule, Violation};

#[cfg(test)]
mod tests {
    use rtdvs_core::example::table2_task_set;
    use rtdvs_core::machine::Machine;
    use rtdvs_core::policy::PolicyKind;
    use rtdvs_core::sched::SchedulerKind;
    use rtdvs_core::time::Time;
    use rtdvs_sim::config::SimConfig;
    use rtdvs_sim::ExecModel;

    use crate::{audit_run, Rule};

    fn cfg() -> SimConfig {
        SimConfig::new(Time::from_ms(160.0))
            .with_exec(ExecModel::uniform())
            .with_seed(7)
    }

    #[test]
    fn paper_policies_pass_on_the_example_set() {
        let tasks = table2_task_set();
        for machine in [Machine::machine0(), Machine::machine2()] {
            for kind in PolicyKind::paper_six() {
                let (report, violations) = audit_run(&tasks, &machine, kind, &cfg());
                assert!(report.all_deadlines_met(), "{} missed", kind.name());
                assert!(
                    violations.is_empty(),
                    "{} on {}: {violations:?}",
                    kind.name(),
                    machine.name()
                );
            }
        }
    }

    #[test]
    fn broken_manual_pin_is_flagged() {
        // Pinning the example set (U ≈ 0.746) to machine0's lowest point
        // (0.5) makes it infeasible; the auditor must flag the misses.
        let tasks = table2_task_set();
        let machine = Machine::machine0();
        let kind = PolicyKind::Manual {
            scheduler: SchedulerKind::Edf,
            point: machine.lowest(),
        };
        let (report, violations) = audit_run(&tasks, &machine, kind, &cfg());
        assert!(!report.all_deadlines_met());
        assert!(violations.iter().any(|v| v.rule == Rule::DeadlineMiss));
        // Manual makes no guarantee, so the miss is not a guarantee
        // violation.
        assert!(!violations.iter().any(|v| v.rule == Rule::GuaranteeViolated));
    }

    /// Under injected faults the auditor must not blame the policy: every
    /// miss that follows a fault is classified fault-induced, and the
    /// point/scheduler divergence caused by containment is not flagged.
    #[test]
    fn faulty_runs_produce_no_policy_findings() {
        use rtdvs_sim::FaultPlan;
        let tasks = table2_task_set();
        let machine = Machine::machine0();
        // Two plans: a mild one, and a harsh one whose heavy release
        // jitter once tripped ccRM's pacing cross-check (the policy-state
        // invariants must stand down when faults void their premises).
        let plans = [
            FaultPlan::new(0xC405)
                .with_overruns(0.3, 1.5)
                .with_stuck_transitions(0.1)
                .with_transition_jitter(0.1, Time::from_ms(0.1))
                .with_release_jitter(0.1, 0.25),
            FaultPlan::new(0xBEEF)
                .with_overruns(0.4, 1.5)
                .with_stuck_transitions(0.2)
                .with_transition_jitter(0.2, Time::from_ms(0.1))
                .with_release_jitter(0.2, 0.25),
        ];
        for (plan, kind) in plans
            .iter()
            .flat_map(|p| PolicyKind::paper_six().into_iter().map(move |k| (p, k)))
        {
            let config = cfg().with_faults(plan.clone());
            let (report, violations) = audit_run(&tasks, &machine, kind, &config);
            assert!(
                !report.faults.is_empty(),
                "{}: the plan should have injected something",
                kind.name()
            );
            for v in &violations {
                assert!(
                    v.rule == Rule::FaultInducedMiss,
                    "{}: unexpected policy finding {v}",
                    kind.name()
                );
            }
            assert_eq!(
                crate::policy_bug_misses(&report),
                0,
                "{}: classifier blames the policy",
                kind.name()
            );
        }
    }

    /// The same run without a fault plan audits exactly as before — the
    /// fault-aware paths must not relax anything for clean runs.
    #[test]
    fn clean_runs_still_fully_audited() {
        let tasks = table2_task_set();
        let machine = Machine::machine0();
        let (report, violations) = audit_run(&tasks, &machine, PolicyKind::CcEdf, &cfg());
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(crate::policy_bug_misses(&report), 0);
        assert_eq!(crate::fault_induced_misses(&report), 0);
    }

    #[test]
    fn missing_trace_is_reported() {
        let tasks = table2_task_set();
        let machine = Machine::machine0();
        let config = cfg();
        let report = rtdvs_sim::simulate(&tasks, &machine, PolicyKind::CcEdf, &config);
        let auditor = crate::TraceAuditor::new(&tasks, &machine, PolicyKind::CcEdf, &config);
        let violations = auditor.audit(&report);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, Rule::TraceConsistency);
    }
}
