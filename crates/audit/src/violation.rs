//! Structured audit findings.

use core::fmt;

use rtdvs_core::task::TaskId;
use rtdvs_core::time::Time;

/// The invariant a [`Violation`] breaks. Each rule is a machine-checkable
/// restatement of a guarantee the paper makes (the section references are
/// to Pillai & Shin, SOSP 2001).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// An invocation was still outstanding at its deadline.
    DeadlineMiss,
    /// A deadline was missed even though the policy's admission test
    /// (condition C1, §2.2) accepted the task set.
    GuaranteeViolated,
    /// More operating-point switches than two per invocation plus the
    /// initial setting (§2.5, §4.1).
    SwitchBound,
    /// The selected frequency does not cover the demand the policy itself
    /// committed to (the shared "select frequency" step, §2.3–§2.5).
    DemandCoverage,
    /// ccEDF's per-task utilization bookkeeping does not sum back to the
    /// worst case on releases / the actual usage on completions (§2.4).
    CcEdfAccounting,
    /// ccRM's outstanding allotment exceeds what the statically-scaled
    /// schedule would grant over the pacing window (§2.4).
    CcRmPacing,
    /// laEDF deferred work that is due before the earliest deadline, or
    /// planned more work than is outstanding (§2.5).
    LaEdfDeferral,
    /// A dynamic scheme idled above the lowest operating point (§3.2).
    IdleAtLowest,
    /// The trace diverges from what a faithful replay of the policy
    /// decides (wrong point applied, unexpected review, ...).
    PolicyDivergence,
    /// The trace is internally inconsistent (work accrual, release
    /// arithmetic, event ordering, missing trace, ...).
    TraceConsistency,
    /// A deadline miss attributed to an injected fault rather than the
    /// policy: a fault event preceded the missed deadline, voiding the
    /// admission test's premises. Informational — chaos runs assert these
    /// are the *only* kind of miss.
    FaultInducedMiss,
    /// The kernel's mode epoch did not advance monotonically by one per
    /// committed transaction — a transactional mode change committed
    /// twice, out of order, or skipped an epoch.
    EpochMonotonicity,
    /// The kernel event log is internally inconsistent: an invocation
    /// released out of sequence, left unclosed, or attributed to a task
    /// that was never admitted (orphan event).
    KernelLogConsistency,
    /// A regulator safe-point fallback landed *below* the desired
    /// frequency. The transition driver rounds up, never down, so the
    /// applied point must always cover the policy's demand.
    UnsafeFallback,
    /// A transition landed above the active brownout/thermal cap: the
    /// kernel asked the regulator for a point the external constraint
    /// forbids.
    CapViolation,
    /// Multi-tenant temporal isolation was broken: a hard-RT periodic
    /// deadline miss or a compliant tenant's shed/rejection occurred that
    /// is attributable to another tenant's overload.
    TenantIsolation,
    /// A crash restore was not followed by a completed invocation within
    /// the bounded recovery window — the revived kernel failed to
    /// demonstrably serve work again in time.
    RecoveryBound,
    /// The run's availability (fraction of the horizon at the preferred
    /// policy with no task shed) fell below the campaign's declared floor.
    AvailabilityFloor,
    /// Kernel time moved backwards: a log timestamp regressed, or the
    /// time base reported clamping a non-positive backward jump. The
    /// monotonicity clamp must make both impossible.
    ClockMonotonicity,
    /// A clock-gated release fired later than the stalled-tick watchdog's
    /// worst-case bound allows (or reported a non-positive latency).
    ReleaseLatencyBound,
}

impl Rule {
    /// Short stable identifier (used in reports and allowlists).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Rule::DeadlineMiss => "deadline-miss",
            Rule::GuaranteeViolated => "guarantee-violated",
            Rule::SwitchBound => "switch-bound",
            Rule::DemandCoverage => "demand-coverage",
            Rule::CcEdfAccounting => "cc-edf-accounting",
            Rule::CcRmPacing => "cc-rm-pacing",
            Rule::LaEdfDeferral => "la-edf-deferral",
            Rule::IdleAtLowest => "idle-at-lowest",
            Rule::PolicyDivergence => "policy-divergence",
            Rule::TraceConsistency => "trace-consistency",
            Rule::FaultInducedMiss => "fault-induced-miss",
            Rule::EpochMonotonicity => "epoch-monotonicity",
            Rule::KernelLogConsistency => "kernel-log-consistency",
            Rule::UnsafeFallback => "unsafe-fallback",
            Rule::CapViolation => "cap-violation",
            Rule::TenantIsolation => "tenant-isolation",
            Rule::RecoveryBound => "recovery-bound",
            Rule::AvailabilityFloor => "availability-floor",
            Rule::ClockMonotonicity => "clock-monotonicity",
            Rule::ReleaseLatencyBound => "release-latency-bound",
        }
    }

    /// The paper section the rule formalizes (for reports).
    #[must_use]
    pub fn paper_section(self) -> &'static str {
        match self {
            Rule::DeadlineMiss | Rule::GuaranteeViolated => "§2.2 (condition C1)",
            Rule::SwitchBound => "§2.5 / §4.1 (two switches per invocation)",
            Rule::DemandCoverage => "§2.3–§2.5 (select frequency)",
            Rule::CcEdfAccounting => "§2.4 (Fig. 4)",
            Rule::CcRmPacing => "§2.4 (Fig. 6)",
            Rule::LaEdfDeferral => "§2.5 (Fig. 8)",
            Rule::IdleAtLowest => "§3.2 (idle at the lowest point)",
            Rule::PolicyDivergence | Rule::TraceConsistency => "trace replay",
            Rule::FaultInducedMiss => "fault injection (chaos harness)",
            Rule::EpochMonotonicity | Rule::KernelLogConsistency => {
                "kernel lifecycle (mode changes & recovery)"
            }
            Rule::UnsafeFallback | Rule::CapViolation => {
                "regulator hardening (safe-point fallback & brownout caps)"
            }
            Rule::TenantIsolation => "multi-tenant serving (quota isolation)",
            Rule::RecoveryBound | Rule::AvailabilityFloor => {
                "chaos campaign (availability accounting)"
            }
            Rule::ClockMonotonicity | Rule::ReleaseLatencyBound => {
                "time-base hardening (clock faults & tick-gap recovery)"
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One broken invariant, located in simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// When the violation was observed.
    pub time: Time,
    /// The task involved, if the rule is task-specific.
    pub task: Option<TaskId>,
    /// The broken rule.
    pub rule: Rule,
    /// Human-readable specifics (observed vs expected values).
    pub details: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] t={}", self.rule, self.time)?;
        if let Some(TaskId(i)) = self.task {
            write!(f, " T{}", i + 1)?;
        }
        write!(f, ": {}", self.details)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_rule_task_and_details() {
        let v = Violation {
            time: Time::from_ms(8.0),
            task: Some(TaskId(1)),
            rule: Rule::DeadlineMiss,
            details: "remaining 0.5".to_owned(),
        };
        let s = v.to_string();
        assert!(s.contains("deadline-miss"));
        assert!(s.contains("T2"));
        assert!(s.contains("remaining 0.5"));
    }

    #[test]
    fn every_rule_has_a_name_and_section() {
        for rule in [
            Rule::DeadlineMiss,
            Rule::GuaranteeViolated,
            Rule::SwitchBound,
            Rule::DemandCoverage,
            Rule::CcEdfAccounting,
            Rule::CcRmPacing,
            Rule::LaEdfDeferral,
            Rule::IdleAtLowest,
            Rule::PolicyDivergence,
            Rule::TraceConsistency,
            Rule::FaultInducedMiss,
            Rule::EpochMonotonicity,
            Rule::KernelLogConsistency,
            Rule::UnsafeFallback,
            Rule::CapViolation,
            Rule::TenantIsolation,
            Rule::RecoveryBound,
            Rule::AvailabilityFloor,
            Rule::ClockMonotonicity,
            Rule::ReleaseLatencyBound,
        ] {
            assert!(!rule.as_str().is_empty());
            assert!(!rule.paper_section().is_empty());
        }
    }
}
