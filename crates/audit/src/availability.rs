//! Campaign-level availability rules: bounded recovery and an
//! availability floor.
//!
//! The existing auditors check *what* went wrong (misses, unsafe
//! fallbacks, broken isolation); these rules check *how long* the system
//! stayed wrong. Both replay the kernel event log through the kernel's own
//! [`AvailabilityStats`] accounting, so the auditor and the bench artifact
//! can never disagree about what the numbers mean.

use rtdvs_core::time::Time;
use rtdvs_kernel::{AvailabilityStats, KernelEvent};

use crate::violation::{Rule, Violation};

/// The availability contract a chaos-campaign cell is audited against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvailabilityPolicy {
    /// Every crash restore must see a completed invocation within this
    /// many milliseconds ([`Rule::RecoveryBound`]).
    pub max_recovery_ms: f64,
    /// Minimum fraction of the horizon spent fully nominal
    /// ([`Rule::AvailabilityFloor`]).
    pub min_availability: f64,
}

impl Default for AvailabilityPolicy {
    /// A permissive default: two server periods of recovery slack and a
    /// 50% floor — tight enough to catch a wedged restore or a run pinned
    /// at the ladder bottom, loose enough for mild adversity to pass.
    fn default() -> AvailabilityPolicy {
        AvailabilityPolicy {
            max_recovery_ms: 50.0,
            min_availability: 0.5,
        }
    }
}

/// Audits `log` (up to `now`, with the kernel's ladder rung names) against
/// `policy`. Returns one [`Rule::RecoveryBound`] violation per restore
/// whose first completion came too late (or never), and at most one
/// [`Rule::AvailabilityFloor`] violation for the run.
#[must_use]
pub fn audit_availability(
    log: &[(Time, KernelEvent)],
    now: Time,
    rungs: &[&str],
    policy: &AvailabilityPolicy,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    // Per-restore recovery latency, walked directly so every late restore
    // is reported (the aggregate stats only keep worst/last).
    let mut pending: Option<Time> = None;
    for (t, event) in log {
        match event {
            KernelEvent::SupervisorRestored => {
                if let Some(restored_at) = pending.take() {
                    // The previous restore never completed anything before
                    // the next crash; charge it the full gap.
                    check_recovery(&mut violations, restored_at, *t, policy);
                }
                pending = Some(*t);
            }
            KernelEvent::Completed { .. } => {
                if let Some(restored_at) = pending.take() {
                    check_recovery(&mut violations, restored_at, *t, policy);
                }
            }
            _ => {}
        }
    }
    if let Some(restored_at) = pending {
        // Still no completion by the end of the horizon.
        check_recovery(&mut violations, restored_at, now, policy);
    }
    let stats = AvailabilityStats::replay(log, now, rungs);
    let up = stats.availability();
    if up < policy.min_availability {
        violations.push(Violation {
            time: now,
            task: None,
            rule: Rule::AvailabilityFloor,
            details: format!(
                "availability {:.4} below floor {:.4} ({:.1} ms degraded of {:.1} ms)",
                up, policy.min_availability, stats.degraded_ms, stats.total_ms
            ),
        });
    }
    violations
}

fn check_recovery(
    violations: &mut Vec<Violation>,
    restored_at: Time,
    completed_at: Time,
    policy: &AvailabilityPolicy,
) {
    let latency = (completed_at.as_ms() - restored_at.as_ms()).max(0.0);
    if latency > policy.max_recovery_ms {
        violations.push(Violation {
            time: restored_at,
            task: None,
            rule: Rule::RecoveryBound,
            details: format!(
                "restore at {:.3} ms not followed by a completion within {:.1} ms (took {:.3} ms)",
                restored_at.as_ms(),
                policy.max_recovery_ms,
                latency
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdvs_kernel::TaskHandle;

    const RUNGS: [&str; 2] = ["laEDF", "manual"];

    fn at(ms: f64, e: KernelEvent) -> (Time, KernelEvent) {
        (Time::from_ms(ms), e)
    }

    fn done(ms: f64) -> (Time, KernelEvent) {
        at(
            ms,
            KernelEvent::Completed {
                handle: TaskHandle::from_raw(1),
                invocation: 1,
            },
        )
    }

    #[test]
    fn clean_log_passes() {
        let policy = AvailabilityPolicy::default();
        let log = vec![done(5.0)];
        assert!(audit_availability(&log, Time::from_ms(100.0), &RUNGS, &policy).is_empty());
    }

    #[test]
    fn prompt_recovery_passes_late_recovery_fails() {
        let policy = AvailabilityPolicy {
            max_recovery_ms: 10.0,
            min_availability: 0.0,
        };
        let ok = vec![at(20.0, KernelEvent::SupervisorRestored), done(25.0)];
        assert!(audit_availability(&ok, Time::from_ms(100.0), &RUNGS, &policy).is_empty());
        let late = vec![at(20.0, KernelEvent::SupervisorRestored), done(45.0)];
        let v = audit_availability(&late, Time::from_ms(100.0), &RUNGS, &policy);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::RecoveryBound);
        assert_eq!(v[0].time, Time::from_ms(20.0));
    }

    #[test]
    fn restore_with_no_completion_is_charged_to_the_horizon() {
        let policy = AvailabilityPolicy {
            max_recovery_ms: 10.0,
            min_availability: 0.0,
        };
        let log = vec![at(90.0, KernelEvent::SupervisorRestored)];
        let v = audit_availability(&log, Time::from_ms(200.0), &RUNGS, &policy);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::RecoveryBound);
    }

    #[test]
    fn back_to_back_restores_each_get_checked() {
        let policy = AvailabilityPolicy {
            max_recovery_ms: 10.0,
            min_availability: 0.0,
        };
        let log = vec![
            at(10.0, KernelEvent::SupervisorRestored),
            at(40.0, KernelEvent::SupervisorRestored),
            done(45.0),
        ];
        let v = audit_availability(&log, Time::from_ms(100.0), &RUNGS, &policy);
        // The first restore's window ran 30 ms to the second crash.
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].time, Time::from_ms(10.0));
    }

    #[test]
    fn availability_floor_is_enforced() {
        let policy = AvailabilityPolicy {
            max_recovery_ms: 1000.0,
            min_availability: 0.9,
        };
        let log = vec![at(
            10.0,
            KernelEvent::LadderStepped {
                from: "laEDF",
                to: "manual",
            },
        )];
        let v = audit_availability(&log, Time::from_ms(100.0), &RUNGS, &policy);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::AvailabilityFloor);
        assert!(v[0].details.contains("0.1000"));
    }
}
