//! Replay audit of the kernel's own event log.
//!
//! The trace auditor in [`crate::replay`] checks a *simulator* run against
//! the paper's DVS guarantees. This module audits the other artifact the
//! repo produces: the [`RtKernel`](rtdvs_kernel::RtKernel) lifecycle log,
//! as read back live or stitched together across a crash/restore cycle
//! (the snapshot carries the full log, so a restored run's log is a
//! superset of the pre-crash one). The checks are pure log-consistency
//! rules — they need no kernel instance, only the `(time, event)` pairs:
//!
//! - timestamps never go backwards, and every clamped backward RTC jump
//!   reports a positive attempted regression ([`Rule::ClockMonotonicity`]
//!   — the time base's clamp must make regression unobservable),
//! - clock-gated releases stay within the stalled-tick watchdog's
//!   worst-case latency ([`Rule::ReleaseLatencyBound`]),
//! - the mode epoch advances by exactly one per committed transaction
//!   ([`Rule::EpochMonotonicity`]),
//! - per task, invocation numbers are released in `+1` sequence and every
//!   release is closed (completion, miss, removal, or shed) before the
//!   next one ([`Rule::KernelLogConsistency`]),
//! - no event names a task that is not live at that point (orphan events),
//! - every `DeadlineMiss` event is surfaced as a [`Rule::DeadlineMiss`]
//!   finding so harnesses can assert "zero policy-blamed misses" on the
//!   same report type the trace auditor uses,
//! - a regulator safe-point fallback never lands below the desired point
//!   ([`Rule::UnsafeFallback`] — the driver rounds up, never down), and
//!   never above the brownout cap active at that moment
//!   ([`Rule::CapViolation`]).
//!
//! A trailing open invocation is *not* a violation: a log captured
//! mid-run (or at a checkpoint) legitimately ends with work in flight.

use std::collections::HashMap;

use rtdvs_core::time::Time;
use rtdvs_kernel::{KernelEvent, TaskHandle};

use crate::violation::{Rule, Violation};

/// Worst acceptable release latency behind schedule, in milliseconds.
/// The stalled-tick watchdog engages after
/// [`rtdvs_kernel::WATCHDOG_GAP_TICKS`] silent ticks and synthesizes a
/// delivery, so a gated release can trail its scheduled instant by at
/// most that gap plus the catch-up cascade; twice the watchdog window is
/// a safe ceiling at the 1ms nominal tick.
const RELEASE_LATENCY_BOUND_MS: f64 = 16.0;

/// Per-task bookkeeping while walking the log.
#[derive(Default)]
struct TaskState {
    /// Admitted (or readmitted) and not since removed/shed.
    live: bool,
    /// The invocation number currently released and not yet closed.
    open: Option<u64>,
    /// The last invocation number ever released (survives shed/readmit,
    /// which continue the count).
    last_released: Option<u64>,
}

fn flag(out: &mut Vec<Violation>, time: Time, rule: Rule, details: String) {
    out.push(Violation {
        time,
        task: None,
        rule,
        details,
    });
}

/// Audits a kernel event log for lifecycle consistency.
///
/// Returns one [`Violation`] per broken rule, in log order. An empty
/// result means the log is a self-consistent history: admissions precede
/// releases, invocations are sequential and properly closed, removals and
/// sheds only name live tasks, and committed mode changes stepped the
/// epoch monotonically.
#[must_use]
pub fn audit_kernel_log(log: &[(Time, KernelEvent)]) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut tasks: HashMap<TaskHandle, TaskState> = HashMap::new();
    let mut last_time = Time::ZERO;
    let mut last_epoch = 0u64;
    // The brownout cap in force at this point of the log (machine points
    // are ascending, so point-index comparisons are frequency comparisons).
    let mut cap: Option<usize> = None;

    // Requires the handle to be live; one violation per orphan event.
    fn live<'a>(
        tasks: &'a mut HashMap<TaskHandle, TaskState>,
        out: &mut Vec<Violation>,
        time: Time,
        handle: TaskHandle,
        what: &str,
    ) -> &'a mut TaskState {
        let st = tasks.entry(handle).or_default();
        if !st.live {
            flag(
                out,
                time,
                Rule::KernelLogConsistency,
                format!("{what} for {handle}, which is not live here (orphan event)"),
            );
            // Keep auditing from the event's own premise to avoid a
            // cascade of findings for the same root cause.
            st.live = true;
        }
        st
    }

    for &(time, ref event) in log {
        if time.as_ms() < last_time.as_ms() {
            flag(
                &mut out,
                time,
                Rule::ClockMonotonicity,
                format!(
                    "timestamp went backwards: {:.3}ms after {:.3}ms",
                    time.as_ms(),
                    last_time.as_ms()
                ),
            );
        }
        last_time = last_time.max(time);

        match *event {
            KernelEvent::Admitted { handle, .. } => {
                let st = tasks.entry(handle).or_default();
                if st.live {
                    flag(
                        &mut out,
                        time,
                        Rule::KernelLogConsistency,
                        format!("{handle} admitted while already live"),
                    );
                }
                // Handles are never reissued, so a (re)admission starts a
                // fresh invocation sequence.
                *st = TaskState {
                    live: true,
                    open: None,
                    last_released: None,
                };
            }
            KernelEvent::Readmitted { handle, .. } => {
                let st = tasks.entry(handle).or_default();
                if st.live {
                    flag(
                        &mut out,
                        time,
                        Rule::KernelLogConsistency,
                        format!("{handle} readmitted while already live"),
                    );
                }
                // Readmission continues the shed task's invocation count.
                st.live = true;
                st.open = None;
            }
            KernelEvent::Removed { handle } | KernelEvent::Shed { handle, .. } => {
                let st = live(&mut tasks, &mut out, time, handle, "removal/shed");
                // Leaving the set closes any open invocation.
                st.live = false;
                st.open = None;
            }
            KernelEvent::Released { handle, invocation } => {
                let st = live(&mut tasks, &mut out, time, handle, "release");
                if let Some(open) = st.open {
                    flag(
                        &mut out,
                        time,
                        Rule::KernelLogConsistency,
                        format!(
                            "{handle} released invocation {invocation} while \
                             invocation {open} is still unclosed"
                        ),
                    );
                }
                if let Some(last) = st.last_released {
                    if invocation != last + 1 {
                        flag(
                            &mut out,
                            time,
                            Rule::KernelLogConsistency,
                            format!(
                                "{handle} released invocation {invocation} out of \
                                 sequence (expected {})",
                                last + 1
                            ),
                        );
                    }
                }
                st.open = Some(invocation);
                st.last_released = Some(invocation);
            }
            KernelEvent::Completed { handle, invocation } => {
                let st = live(&mut tasks, &mut out, time, handle, "completion");
                if st.open != Some(invocation) {
                    flag(
                        &mut out,
                        time,
                        Rule::KernelLogConsistency,
                        format!(
                            "{handle} completed invocation {invocation} without a \
                             matching open release ({:?} open)",
                            st.open
                        ),
                    );
                }
                st.open = None;
            }
            KernelEvent::DeadlineMiss {
                handle,
                invocation,
                remaining,
            } => {
                let st = live(&mut tasks, &mut out, time, handle, "deadline miss");
                if st.open != Some(invocation) {
                    flag(
                        &mut out,
                        time,
                        Rule::KernelLogConsistency,
                        format!(
                            "{handle} missed invocation {invocation} without a \
                             matching open release ({:?} open)",
                            st.open
                        ),
                    );
                }
                st.open = None;
                flag(
                    &mut out,
                    time,
                    Rule::DeadlineMiss,
                    format!(
                        "{handle} invocation {invocation} missed its deadline \
                         with {:.3}ms outstanding",
                        remaining.as_ms()
                    ),
                );
            }
            KernelEvent::Overrun { handle, .. } | KernelEvent::Renegotiated { handle, .. } => {
                let _ = live(&mut tasks, &mut out, time, handle, "overrun/renegotiation");
            }
            KernelEvent::ModeChangeCommitted { epoch } => {
                if epoch != last_epoch + 1 {
                    flag(
                        &mut out,
                        time,
                        Rule::EpochMonotonicity,
                        format!(
                            "mode change committed epoch {epoch}, expected {}",
                            last_epoch + 1
                        ),
                    );
                }
                // Resync on the observed value so one skip is one finding.
                last_epoch = epoch;
            }
            KernelEvent::BrownoutCapSet { cap: new_cap } => {
                cap = new_cap;
            }
            KernelEvent::RegulatorFallback { desired, applied } => {
                if applied < desired {
                    flag(
                        &mut out,
                        time,
                        Rule::UnsafeFallback,
                        format!(
                            "fallback applied point {applied} below desired {desired}; \
                             the driver must round up, never down"
                        ),
                    );
                }
                if let Some(c) = cap {
                    if applied > c {
                        flag(
                            &mut out,
                            time,
                            Rule::CapViolation,
                            format!("fallback applied point {applied} above active cap {c}"),
                        );
                    }
                }
            }
            KernelEvent::ClockJumpClamped { attempted } => {
                if attempted.as_ms() <= 0.0 {
                    flag(
                        &mut out,
                        time,
                        Rule::ClockMonotonicity,
                        format!(
                            "clamp recorded a non-positive backward jump \
                             ({:.3}ms): nothing regressed, so nothing should \
                             have been clamped",
                            attempted.as_ms()
                        ),
                    );
                }
            }
            KernelEvent::ReleaseLate {
                handle,
                invocation,
                latency,
            } => {
                if latency.as_ms() <= 0.0 {
                    flag(
                        &mut out,
                        time,
                        Rule::ReleaseLatencyBound,
                        format!(
                            "{handle} invocation {invocation} reported a \
                             non-positive release latency ({:.3}ms)",
                            latency.as_ms()
                        ),
                    );
                } else if latency.as_ms() > RELEASE_LATENCY_BOUND_MS {
                    flag(
                        &mut out,
                        time,
                        Rule::ReleaseLatencyBound,
                        format!(
                            "{handle} invocation {invocation} released \
                             {:.3}ms behind schedule, past the \
                             {RELEASE_LATENCY_BOUND_MS:.0}ms watchdog bound",
                            latency.as_ms()
                        ),
                    );
                }
            }
            KernelEvent::PolicyLoaded { .. }
            | KernelEvent::Degraded { .. }
            | KernelEvent::ModeChangeStaged { .. }
            | KernelEvent::ModeChangeRejected { .. }
            | KernelEvent::GovernorStretched { .. }
            | KernelEvent::GovernorRelaxed
            | KernelEvent::LadderStepped { .. }
            | KernelEvent::SupervisorRestored
            | KernelEvent::ClockTickGap { .. }
            | KernelEvent::ClockWatchdog { .. }
            | KernelEvent::SnapshotTaken => {}
        }
    }
    out
}

/// One tenant's end-of-run standing, as reported by the serving harness:
/// whether its offered load stayed within its quota, and how much
/// backpressure it absorbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantStanding {
    /// The tenant's raw id.
    pub tenant: u64,
    /// Whether the tenant's offered load exceeded its guaranteed quota at
    /// any point of the run (a flooding tenant).
    pub over_quota: bool,
    /// Requests shed from its queue (oldest-first backpressure).
    pub shed: u64,
    /// Submissions rejected while quarantined.
    pub rejected: u64,
}

/// Audits multi-tenant temporal isolation ([`Rule::TenantIsolation`]).
///
/// The rule formalizes the serving subsystem's promise: another tenant's
/// overload is absorbed by *that tenant's* backpressure, never exported.
/// Concretely, when at least one tenant ran over quota:
///
/// - no hard-RT periodic task may miss a deadline (the server's budget is
///   admission-tested; a flood must not leak past it), and
/// - no compliant tenant (one that stayed within quota) may have had a
///   request shed or rejected — that would be quota theft.
///
/// With every tenant within quota the rule is vacuous: sheds then indicate
/// a misconfigured backlog bound, not cross-tenant interference, and are
/// left to other checks.
#[must_use]
pub fn audit_tenant_isolation(
    standings: &[TenantStanding],
    log: &[(Time, KernelEvent)],
) -> Vec<Violation> {
    let mut out = Vec::new();
    if !standings.iter().any(|s| s.over_quota) {
        return out;
    }
    let end = log.last().map_or(Time::ZERO, |&(t, _)| t);
    for &(time, ref event) in log {
        if let KernelEvent::DeadlineMiss {
            handle, invocation, ..
        } = *event
        {
            flag(
                &mut out,
                time,
                Rule::TenantIsolation,
                format!(
                    "hard-RT {handle} missed invocation {invocation} while a \
                     tenant was over quota: overload leaked past the server budget"
                ),
            );
        }
    }
    for s in standings {
        if s.over_quota {
            continue;
        }
        if s.shed > 0 || s.rejected > 0 {
            flag(
                &mut out,
                end,
                Rule::TenantIsolation,
                format!(
                    "compliant tenant{} lost requests (shed={}, rejected={}) \
                     while another tenant was over quota: quota theft",
                    s.tenant, s.shed, s.rejected
                ),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdvs_core::machine::Machine;
    use rtdvs_core::policy::PolicyKind;
    use rtdvs_core::time::Work;
    use rtdvs_kernel::{FractionBody, ModeChange, RtKernel};

    fn ms(v: f64) -> Time {
        Time::from_ms(v)
    }

    #[test]
    fn a_real_kernel_run_audits_clean() {
        let mut k = RtKernel::new(Machine::machine0(), PolicyKind::CcEdf);
        let a = k
            .spawn(ms(10.0), Work::from_ms(3.0), Box::new(FractionBody(0.8)))
            .unwrap();
        k.spawn(ms(20.0), Work::from_ms(4.0), Box::new(FractionBody(0.6)))
            .unwrap();
        k.run_for(ms(95.0));
        k.submit_mode_change(
            ModeChange::new()
                .reparam(a, ms(16.0), Work::from_ms(3.0))
                .admit(ms(40.0), Work::from_ms(2.0), Box::new(FractionBody(0.5))),
        )
        .unwrap();
        k.run_for(ms(160.0));
        k.remove(a).unwrap();
        k.run_for(ms(80.0));
        let violations = audit_kernel_log(k.log());
        assert!(violations.is_empty(), "{violations:?}");
        assert!(k
            .log()
            .iter()
            .any(|(_, e)| matches!(e, KernelEvent::ModeChangeCommitted { epoch: 1 })));
    }

    #[test]
    fn epoch_skips_and_repeats_are_flagged() {
        let log = vec![
            (ms(1.0), KernelEvent::ModeChangeCommitted { epoch: 1 }),
            (ms(2.0), KernelEvent::ModeChangeCommitted { epoch: 3 }),
            (ms(3.0), KernelEvent::ModeChangeCommitted { epoch: 4 }),
            (ms(4.0), KernelEvent::ModeChangeCommitted { epoch: 4 }),
        ];
        let violations = audit_kernel_log(&log);
        let epochs: Vec<_> = violations
            .iter()
            .filter(|v| v.rule == Rule::EpochMonotonicity)
            .collect();
        assert_eq!(epochs.len(), 2, "{violations:?}");
        assert!(epochs[0].details.contains("epoch 3, expected 2"));
        assert!(epochs[1].details.contains("epoch 4, expected 5"));
    }

    #[test]
    fn orphan_and_out_of_sequence_events_are_flagged() {
        let h = TaskHandle::from_raw(1);
        // Released without admission, then a sequence gap, then an
        // unclosed release superseded by the next one.
        let log = vec![
            (
                ms(0.0),
                KernelEvent::Released {
                    handle: h,
                    invocation: 1,
                },
            ),
            (
                ms(1.0),
                KernelEvent::Completed {
                    handle: h,
                    invocation: 1,
                },
            ),
            (
                ms(10.0),
                KernelEvent::Released {
                    handle: h,
                    invocation: 3,
                },
            ),
            (
                ms(20.0),
                KernelEvent::Released {
                    handle: h,
                    invocation: 4,
                },
            ),
        ];
        let violations = audit_kernel_log(&log);
        assert!(violations
            .iter()
            .any(|v| v.rule == Rule::KernelLogConsistency && v.details.contains("orphan")));
        assert!(violations
            .iter()
            .any(|v| v.details.contains("out of sequence (expected 2)")));
        assert!(violations
            .iter()
            .any(|v| v.details.contains("invocation 3 is still unclosed")));
    }

    #[test]
    fn backwards_time_and_stray_completion_are_flagged() {
        let h = TaskHandle::from_raw(2);
        let log = vec![
            (
                ms(5.0),
                KernelEvent::Admitted {
                    handle: h,
                    deferred: false,
                },
            ),
            (
                ms(4.0),
                KernelEvent::Completed {
                    handle: h,
                    invocation: 1,
                },
            ),
        ];
        let violations = audit_kernel_log(&log);
        assert!(violations
            .iter()
            .any(|v| v.rule == Rule::ClockMonotonicity
                && v.details.contains("timestamp went backwards")));
        assert!(violations
            .iter()
            .any(|v| v.details.contains("without a matching open release")));
    }

    #[test]
    fn clock_events_audit_clean_and_degenerate_ones_are_flagged() {
        let h = TaskHandle::from_raw(1);
        let healthy = vec![
            (
                ms(0.0),
                KernelEvent::Admitted {
                    handle: h,
                    deferred: false,
                },
            ),
            (ms(3.0), KernelEvent::ClockTickGap { missed: 2 }),
            (ms(3.0), KernelEvent::ClockWatchdog { engaged: true }),
            (
                ms(3.0),
                KernelEvent::ClockJumpClamped { attempted: ms(1.5) },
            ),
            (
                ms(3.0),
                KernelEvent::Released {
                    handle: h,
                    invocation: 1,
                },
            ),
            (
                ms(3.0),
                KernelEvent::ReleaseLate {
                    handle: h,
                    invocation: 1,
                    latency: ms(3.0),
                },
            ),
            (ms(4.0), KernelEvent::ClockWatchdog { engaged: false }),
        ];
        let violations = audit_kernel_log(&healthy);
        assert!(violations.is_empty(), "{violations:?}");

        let degenerate = vec![
            (
                ms(1.0),
                KernelEvent::ClockJumpClamped { attempted: ms(0.0) },
            ),
            (
                ms(2.0),
                KernelEvent::ReleaseLate {
                    handle: h,
                    invocation: 1,
                    latency: ms(40.0),
                },
            ),
            (
                ms(3.0),
                KernelEvent::ReleaseLate {
                    handle: h,
                    invocation: 2,
                    latency: ms(-1.0),
                },
            ),
        ];
        let violations = audit_kernel_log(&degenerate);
        assert!(violations.iter().any(|v| v.rule == Rule::ClockMonotonicity
            && v.details.contains("non-positive backward jump")));
        assert!(violations
            .iter()
            .any(|v| v.rule == Rule::ReleaseLatencyBound && v.details.contains("behind schedule")));
        assert!(violations
            .iter()
            .any(|v| v.rule == Rule::ReleaseLatencyBound
                && v.details.contains("non-positive release latency")));
    }

    #[test]
    fn misses_surface_as_deadline_miss_findings() {
        let h = TaskHandle::from_raw(1);
        let log = vec![
            (
                ms(0.0),
                KernelEvent::Admitted {
                    handle: h,
                    deferred: false,
                },
            ),
            (
                ms(0.0),
                KernelEvent::Released {
                    handle: h,
                    invocation: 1,
                },
            ),
            (
                ms(10.0),
                KernelEvent::DeadlineMiss {
                    handle: h,
                    invocation: 1,
                    remaining: Work::from_ms(0.5),
                },
            ),
        ];
        let violations = audit_kernel_log(&log);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].rule, Rule::DeadlineMiss);
        assert!(violations[0].details.contains("0.500ms outstanding"));
    }

    #[test]
    fn unsafe_fallbacks_and_cap_violations_are_flagged() {
        let log = vec![
            // Round-up fallback under no cap: fine.
            (
                ms(1.0),
                KernelEvent::RegulatorFallback {
                    desired: 2,
                    applied: 4,
                },
            ),
            // Downward fallback: unsafe by definition.
            (
                ms(2.0),
                KernelEvent::RegulatorFallback {
                    desired: 3,
                    applied: 1,
                },
            ),
            // A cap at point 2, then a fallback landing above it.
            (ms(3.0), KernelEvent::BrownoutCapSet { cap: Some(2) }),
            (
                ms(4.0),
                KernelEvent::RegulatorFallback {
                    desired: 1,
                    applied: 3,
                },
            ),
            // Cap lifted: the same landing is fine again.
            (ms(5.0), KernelEvent::BrownoutCapSet { cap: None }),
            (
                ms(6.0),
                KernelEvent::RegulatorFallback {
                    desired: 1,
                    applied: 3,
                },
            ),
        ];
        let violations = audit_kernel_log(&log);
        let unsafe_fb: Vec<_> = violations
            .iter()
            .filter(|v| v.rule == Rule::UnsafeFallback)
            .collect();
        let cap_viol: Vec<_> = violations
            .iter()
            .filter(|v| v.rule == Rule::CapViolation)
            .collect();
        assert_eq!(unsafe_fb.len(), 1, "{violations:?}");
        assert!(unsafe_fb[0].details.contains("below desired 3"));
        assert_eq!(cap_viol.len(), 1, "{violations:?}");
        assert!(cap_viol[0].details.contains("above active cap 2"));
    }

    #[test]
    fn tenant_isolation_passes_when_the_flood_is_contained() {
        let h = TaskHandle::from_raw(1);
        let log = vec![
            (
                ms(0.0),
                KernelEvent::Admitted {
                    handle: h,
                    deferred: false,
                },
            ),
            (
                ms(0.0),
                KernelEvent::Released {
                    handle: h,
                    invocation: 1,
                },
            ),
            (
                ms(5.0),
                KernelEvent::Completed {
                    handle: h,
                    invocation: 1,
                },
            ),
        ];
        // The flooding tenant absorbs all the backpressure itself.
        let standings = [
            TenantStanding {
                tenant: 1,
                over_quota: true,
                shed: 400,
                rejected: 120,
            },
            TenantStanding {
                tenant: 2,
                over_quota: false,
                shed: 0,
                rejected: 0,
            },
        ];
        assert!(audit_tenant_isolation(&standings, &log).is_empty());
    }

    #[test]
    fn tenant_isolation_flags_quota_theft_and_leaked_misses() {
        let h = TaskHandle::from_raw(1);
        let log = vec![(
            ms(10.0),
            KernelEvent::DeadlineMiss {
                handle: h,
                invocation: 1,
                remaining: Work::from_ms(0.5),
            },
        )];
        let standings = [
            TenantStanding {
                tenant: 1,
                over_quota: true,
                shed: 400,
                rejected: 0,
            },
            TenantStanding {
                tenant: 2,
                over_quota: false,
                shed: 3,
                rejected: 1,
            },
        ];
        let violations = audit_tenant_isolation(&standings, &log);
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations.iter().all(|v| v.rule == Rule::TenantIsolation));
        assert!(violations
            .iter()
            .any(|v| v.details.contains("overload leaked past the server budget")));
        assert!(violations
            .iter()
            .any(|v| v.details.contains("quota theft") && v.details.contains("tenant2")));
    }

    #[test]
    fn tenant_isolation_is_vacuous_without_an_overloaded_tenant() {
        let h = TaskHandle::from_raw(1);
        // Even a deadline miss and sheds are not *isolation* findings when
        // nobody flooded (other rules own those).
        let log = vec![(
            ms(10.0),
            KernelEvent::DeadlineMiss {
                handle: h,
                invocation: 1,
                remaining: Work::from_ms(0.5),
            },
        )];
        let standings = [TenantStanding {
            tenant: 1,
            over_quota: false,
            shed: 7,
            rejected: 2,
        }];
        assert!(audit_tenant_isolation(&standings, &log).is_empty());
    }

    #[test]
    fn shed_and_readmit_continue_the_invocation_count() {
        let h = TaskHandle::from_raw(1);
        let log = vec![
            (
                ms(0.0),
                KernelEvent::Admitted {
                    handle: h,
                    deferred: false,
                },
            ),
            (
                ms(0.0),
                KernelEvent::Released {
                    handle: h,
                    invocation: 1,
                },
            ),
            (
                ms(10.0),
                KernelEvent::Shed {
                    handle: h,
                    observed: Work::from_ms(9.0),
                },
            ),
            (
                ms(30.0),
                KernelEvent::Readmitted {
                    handle: h,
                    bound: Work::from_ms(9.0),
                },
            ),
            (
                ms(30.0),
                KernelEvent::Released {
                    handle: h,
                    invocation: 2,
                },
            ),
            (
                ms(35.0),
                KernelEvent::Completed {
                    handle: h,
                    invocation: 2,
                },
            ),
        ];
        let violations = audit_kernel_log(&log);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
