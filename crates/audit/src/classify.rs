//! Miss classification for fault-injected runs.
//!
//! When a chaos run misses a deadline, the interesting question is *whose
//! fault it was*: an injected fault (an overrun above the admitted bound, a
//! stuck or jittered transition, a delayed release) voids the premises of
//! condition C1, so a subsequent miss says nothing about the policy. A
//! miss in a run — or a window of a run — that no fault has touched is a
//! genuine policy bug. The chaos harness sweeps fault rates across every
//! policy and asserts the policy-bug count stays at zero.

use rtdvs_core::time::Time;
use rtdvs_sim::{DeadlineMiss, SimReport};

/// Who is to blame for a missed deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissClass {
    /// An injected fault preceded the miss; the admission premises were
    /// already void, so the policy is not implicated.
    FaultInduced,
    /// No injected fault could explain the miss: the policy (or the
    /// engine) broke a guarantee it had given.
    PolicyBug,
}

/// One miss with its assigned blame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassifiedMiss {
    /// The miss, as recorded by the simulator.
    pub miss: DeadlineMiss,
    /// Who is to blame.
    pub class: MissClass,
}

/// Classifies every miss in `report`.
///
/// A miss is [`MissClass::FaultInduced`] iff at least one injected fault
/// fired at or before the missed deadline — once any fault has perturbed
/// the run, the schedule the admission test reasoned about no longer
/// exists, so every later miss is attributed to the faults. In a run with
/// no fault events every miss is a [`MissClass::PolicyBug`].
#[must_use]
pub fn classify_misses(report: &SimReport) -> Vec<ClassifiedMiss> {
    let first_fault: Option<Time> = report.faults.iter().map(|f| f.time()).reduce(Time::min);
    report
        .misses
        .iter()
        .map(|&miss| ClassifiedMiss {
            miss,
            class: match first_fault {
                Some(t) if t.at_or_before(miss.deadline) => MissClass::FaultInduced,
                _ => MissClass::PolicyBug,
            },
        })
        .collect()
}

/// The number of misses in `report` no injected fault can explain.
#[must_use]
pub fn policy_bug_misses(report: &SimReport) -> u64 {
    classify_misses(report)
        .iter()
        .filter(|c| c.class == MissClass::PolicyBug)
        .count() as u64
}

/// The number of misses in `report` attributed to injected faults.
#[must_use]
pub fn fault_induced_misses(report: &SimReport) -> u64 {
    classify_misses(report)
        .iter()
        .filter(|c| c.class == MissClass::FaultInduced)
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdvs_core::task::TaskId;
    use rtdvs_core::time::Work;
    use rtdvs_sim::FaultEvent;

    fn base_report() -> SimReport {
        use rtdvs_sim::{ContainmentStats, EnergyMeter};
        SimReport {
            policy: "EDF",
            duration: Time::from_ms(100.0),
            meter: EnergyMeter::new(1, 0.0),
            switches: 0,
            voltage_switches: 0,
            events: 0,
            misses: vec![],
            task_stats: vec![],
            trace: None,
            clamp_events: 0,
            faults: vec![],
            containment: ContainmentStats::default(),
            sched_ns: 0,
        }
    }

    fn miss_at(deadline_ms: f64) -> DeadlineMiss {
        DeadlineMiss {
            task: TaskId(0),
            deadline: Time::from_ms(deadline_ms),
            invocation: 1,
            remaining: Work::from_ms(1.0),
        }
    }

    #[test]
    fn misses_without_faults_are_policy_bugs() {
        let mut report = base_report();
        report.misses = vec![miss_at(10.0)];
        assert_eq!(policy_bug_misses(&report), 1);
        assert_eq!(fault_induced_misses(&report), 0);
    }

    #[test]
    fn misses_after_a_fault_are_fault_induced() {
        let mut report = base_report();
        report.misses = vec![miss_at(10.0), miss_at(50.0)];
        report.faults = vec![FaultEvent::TransitionJitter {
            time: Time::from_ms(5.0),
            extra: Time::from_ms(0.1),
        }];
        let classified = classify_misses(&report);
        assert!(classified
            .iter()
            .all(|c| c.class == MissClass::FaultInduced));
    }

    #[test]
    fn misses_before_the_first_fault_stay_policy_bugs() {
        let mut report = base_report();
        report.misses = vec![miss_at(10.0), miss_at(50.0)];
        report.faults = vec![FaultEvent::TransitionJitter {
            time: Time::from_ms(20.0),
            extra: Time::from_ms(0.1),
        }];
        assert_eq!(policy_bug_misses(&report), 1);
        assert_eq!(fault_induced_misses(&report), 1);
    }
}
