//! Trace replay: re-derives every scheduling decision of a recorded run
//! and checks the paper's invariants against it.
//!
//! The engine journals releases (with the sampled actual computation),
//! completions, misses, and review grants into the [`Trace`]; segments say
//! what the processor did between them. Replaying the journal against a
//! fresh policy instance reconstructs the exact [`SystemView`] the engine
//! handed to the policy at every scheduling point — work accrual uses the
//! same arithmetic on the same interval boundaries, so the replayed state
//! is bit-for-bit identical and any divergence is a real finding, not
//! float noise.

use rtdvs_core::analysis::{rm_feasible_at, static_rm_point};
use rtdvs_core::machine::{Machine, PointIdx};
use rtdvs_core::policy::{point_for_demand, CcEdf, CcRm, DvsPolicy, LaEdf, PolicyKind};
use rtdvs_core::task::{TaskId, TaskSet};
use rtdvs_core::time::{Time, Work, EPS};
use rtdvs_core::view::{InvState, SystemView, TaskView};
use rtdvs_sim::config::{MissPolicy, SimConfig};
use rtdvs_sim::trace::{Activity, Segment, Trace, TraceEvent};
use rtdvs_sim::{simulate, SimReport};

use crate::violation::{Rule, Violation};

/// Runs `kind` with trace recording forced on and audits the result.
///
/// Convenience entry point for tests and CI: the returned violation list
/// is empty exactly when the run upheld every checked invariant.
#[must_use]
pub fn audit_run(
    tasks: &TaskSet,
    machine: &Machine,
    kind: PolicyKind,
    cfg: &SimConfig,
) -> (SimReport, Vec<Violation>) {
    let cfg = cfg.clone().with_trace();
    let report = simulate(tasks, machine, kind, &cfg);
    let violations = TraceAuditor::new(tasks, machine, kind, &cfg).audit(&report);
    (report, violations)
}

/// Replays a recorded run and verifies the paper's invariants.
///
/// The auditor needs the same inputs the simulation ran with; feed it the
/// exact `tasks`/`machine`/`kind`/`cfg` combination that produced the
/// report (with `cfg.record_trace` enabled), then call
/// [`TraceAuditor::audit`].
#[derive(Debug, Clone, Copy)]
pub struct TraceAuditor<'a> {
    tasks: &'a TaskSet,
    machine: &'a Machine,
    kind: PolicyKind,
    cfg: &'a SimConfig,
}

impl<'a> TraceAuditor<'a> {
    /// Creates an auditor for one simulation configuration.
    #[must_use]
    pub fn new(
        tasks: &'a TaskSet,
        machine: &'a Machine,
        kind: PolicyKind,
        cfg: &'a SimConfig,
    ) -> TraceAuditor<'a> {
        TraceAuditor {
            tasks,
            machine,
            kind,
            cfg,
        }
    }

    /// Audits a report produced by this configuration, returning every
    /// violation found (empty = all invariants held).
    #[must_use]
    pub fn audit(&self, report: &SimReport) -> Vec<Violation> {
        let Some(trace) = &report.trace else {
            return vec![Violation {
                time: Time::ZERO,
                task: None,
                rule: Rule::TraceConsistency,
                details: "no trace recorded; run with SimConfig::with_trace()".to_owned(),
            }];
        };
        let mut out = Vec::new();
        self.check_report(report, trace, &mut out);
        let mut replay = Replay::new(self, trace, report);
        replay.run(trace);
        out.extend(replay.violations);
        out
    }

    /// Report-level checks that need no replay: the switch bound and the
    /// cross-checks between the report's counters and the journal.
    fn check_report(&self, report: &SimReport, trace: &Trace, out: &mut Vec<Violation>) {
        let releases: u64 = report.task_stats.iter().map(|t| t.releases).sum();
        let journaled = trace
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Release { .. }))
            .count() as u64;
        if releases != journaled {
            out.push(Violation {
                time: Time::ZERO,
                task: None,
                rule: Rule::TraceConsistency,
                details: format!("report counts {releases} releases, journal has {journaled}"),
            });
        }
        let journaled_misses = trace
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Miss { .. }))
            .count();
        if report.misses.len() != journaled_misses {
            out.push(Violation {
                time: Time::ZERO,
                task: None,
                rule: Rule::TraceConsistency,
                details: format!(
                    "report counts {} misses, journal has {journaled_misses}",
                    report.misses.len()
                ),
            });
        }
        // Point transitions visible in the trace can never exceed the
        // switches the engine says it applied.
        let transitions = trace
            .segments()
            .windows(2)
            .filter(|w| w[0].point != w[1].point)
            .count() as u64;
        if transitions > report.switches {
            out.push(Violation {
                time: Time::ZERO,
                task: None,
                rule: Rule::TraceConsistency,
                details: format!(
                    "trace shows {transitions} point transitions but report counts only {} switches",
                    report.switches
                ),
            });
        }
        // §2.5: at most two switches per task invocation, plus the initial
        // setting. Holds for the paper's six policies and a manual pin; the
        // interval governor and stochastic extension re-plan on reviews and
        // are exempt by design. Containment escalations and stuck
        // transitions both falsify the bound, so fault-injected runs are
        // exempt too.
        if switch_bounded(self.kind)
            && !self.cfg.fault.is_active()
            && report.switches > 2 * releases + 1
        {
            out.push(Violation {
                time: Time::ZERO,
                task: None,
                rule: Rule::SwitchBound,
                details: format!(
                    "{} switches for {releases} releases (bound 2·releases+1 = {})",
                    report.switches,
                    2 * releases + 1
                ),
            });
        }
    }
}

/// Whether the two-switches-per-invocation bound applies to this policy.
fn switch_bounded(kind: PolicyKind) -> bool {
    !matches!(
        kind,
        PolicyKind::Interval | PolicyKind::StochasticEdf { .. }
    )
}

/// Whether the policy is one of the paper's dynamic schemes, which must
/// halt at the lowest operating point while idle (§3.2).
fn idles_at_lowest(kind: PolicyKind) -> bool {
    matches!(
        kind,
        PolicyKind::CcEdf | PolicyKind::CcRm(_) | PolicyKind::LaEdf
    )
}

/// A concrete replayed policy. The paper's dynamic schemes are kept as
/// concrete types so the auditor can reach their accounting accessors
/// (`utilization_sum`, `outstanding_allotment`, ...); everything else is
/// driven through the trait object.
enum ReplayPolicy {
    CcEdf(CcEdf),
    CcRm(CcRm),
    LaEdf(LaEdf),
    Other(Box<dyn DvsPolicy + Send>),
}

impl ReplayPolicy {
    fn build(kind: PolicyKind) -> ReplayPolicy {
        match kind {
            PolicyKind::CcEdf => ReplayPolicy::CcEdf(CcEdf::new()),
            PolicyKind::CcRm(test) => ReplayPolicy::CcRm(CcRm::new(test)),
            PolicyKind::LaEdf => ReplayPolicy::LaEdf(LaEdf::new()),
            other => ReplayPolicy::Other(other.build()),
        }
    }

    fn as_dyn(&mut self) -> &mut dyn DvsPolicy {
        match self {
            ReplayPolicy::CcEdf(p) => p,
            ReplayPolicy::CcRm(p) => p,
            ReplayPolicy::LaEdf(p) => p,
            ReplayPolicy::Other(p) => p.as_mut(),
        }
    }

    fn as_dyn_ref(&self) -> &dyn DvsPolicy {
        match self {
            ReplayPolicy::CcEdf(p) => p,
            ReplayPolicy::CcRm(p) => p,
            ReplayPolicy::LaEdf(p) => p,
            ReplayPolicy::Other(p) => p.as_ref(),
        }
    }
}

/// Per-task replayed runtime state (mirrors the engine's).
#[derive(Debug, Clone)]
struct TaskRt {
    invocation: u64,
    state: InvState,
    executed: Work,
    actual: Work,
    deadline: Time,
    next_release: Time,
}

struct Replay<'a> {
    tasks: &'a TaskSet,
    machine: &'a Machine,
    kind: PolicyKind,
    cfg: &'a SimConfig,
    policy: ReplayPolicy,
    guarantees: bool,
    rt: Vec<TaskRt>,
    /// Independent ccEDF oracle: worst-case utilization on release, actual
    /// on completion, maintained from the journal alone (§2.4).
    cc_util: Vec<f64>,
    segments: &'a [Segment],
    seg_idx: usize,
    pos: Time,
    /// Whether the run had an active fault plan. Injected faults make the
    /// applied operating point legitimately diverge from the replayed
    /// policy (stuck transitions, containment escalation to `f_max`,
    /// quarantine reordering), so point- and scheduler-divergence checks
    /// are suppressed; state tracking and accounting checks still run.
    fault_active: bool,
    /// Earliest injected fault, for miss classification.
    first_fault: Option<Time>,
    violations: Vec<Violation>,
}

impl<'a> Replay<'a> {
    fn new(auditor: &TraceAuditor<'a>, trace: &'a Trace, report: &SimReport) -> Replay<'a> {
        let rt = auditor
            .tasks
            .tasks()
            .iter()
            .map(|t| TaskRt {
                invocation: 0,
                state: InvState::Inactive,
                executed: Work::ZERO,
                actual: Work::ZERO,
                deadline: t.offset() + t.period(),
                next_release: t.offset(),
            })
            .collect();
        let policy = ReplayPolicy::build(auditor.kind);
        let guarantees = policy.as_dyn_ref().guarantees(auditor.tasks);
        Replay {
            tasks: auditor.tasks,
            machine: auditor.machine,
            kind: auditor.kind,
            cfg: auditor.cfg,
            policy,
            guarantees,
            rt,
            cc_util: auditor
                .tasks
                .tasks()
                .iter()
                .map(|t| t.utilization())
                .collect(),
            segments: trace.segments(),
            seg_idx: 0,
            pos: Time::ZERO,
            fault_active: auditor.cfg.fault.is_active(),
            first_fault: report.faults.iter().map(|f| f.time()).reduce(Time::min),
            violations: Vec::new(),
        }
    }

    fn flag(&mut self, time: Time, task: Option<TaskId>, rule: Rule, details: String) {
        self.violations.push(Violation {
            time,
            task,
            rule,
            details,
        });
    }

    fn views(&self) -> Vec<TaskView> {
        self.rt
            .iter()
            .map(|s| TaskView {
                invocation: s.invocation,
                state: s.state,
                executed: s.executed,
                deadline: s.deadline,
                next_release: s.next_release,
            })
            .collect()
    }

    fn remaining(&self, i: usize) -> Work {
        (self.rt[i].actual - self.rt[i].executed).clamp_non_negative()
    }

    /// The ready queue exactly as the engine computes it.
    fn ready(&self) -> Vec<(TaskId, Time)> {
        self.rt
            .iter()
            .enumerate()
            .filter(|(i, s)| s.state == InvState::Active && self.remaining(*i).is_positive())
            .map(|(i, s)| (TaskId(i), s.deadline))
            .collect()
    }

    fn run(&mut self, trace: &Trace) {
        let init_point = self.policy.as_dyn().init(self.tasks, self.machine);
        self.check_init(init_point);
        for event in trace.events() {
            self.advance_to(event.time());
            self.apply_event(event);
        }
        self.advance_to(self.cfg.duration);
    }

    /// Consumes segments up to `t`, splitting any segment spanning it.
    /// Event times are engine interval boundaries, so the sub-intervals
    /// this produces are exactly the intervals the engine charged.
    fn advance_to(&mut self, t: Time) {
        while self.seg_idx < self.segments.len() {
            let seg = self.segments[self.seg_idx];
            let a = if self.pos.as_ms() > seg.start.as_ms() {
                self.pos
            } else {
                seg.start
            };
            let b = if seg.end.as_ms() < t.as_ms() {
                seg.end
            } else {
                t
            };
            if b.as_ms() > a.as_ms() {
                self.consume(a, b, &seg);
                self.pos = b;
            }
            if seg.end.at_or_before(t) {
                self.seg_idx += 1;
            } else {
                break;
            }
        }
    }

    /// Checks one constant-state interval `[a, b)` and accrues its work.
    fn consume(&mut self, a: Time, b: Time, seg: &Segment) {
        if seg.point >= self.machine.len() {
            self.flag(
                a,
                None,
                Rule::TraceConsistency,
                format!(
                    "segment references operating point {} out of range",
                    seg.point
                ),
            );
            return;
        }
        let freq = self.machine.point(seg.point).freq;
        match seg.activity {
            Activity::Run(id) => {
                let want = self.policy.as_dyn_ref().current_point();
                if seg.point != want && !self.fault_active {
                    self.flag(
                        a,
                        Some(id),
                        Rule::PolicyDivergence,
                        format!(
                            "ran at point {} but the replayed policy holds {want}",
                            seg.point
                        ),
                    );
                }
                if id.0 >= self.rt.len() {
                    self.flag(
                        a,
                        Some(id),
                        Rule::TraceConsistency,
                        "segment runs an unknown task".to_owned(),
                    );
                    return;
                }
                if !self.fault_active {
                    let ready = self.ready();
                    match self
                        .policy
                        .as_dyn_ref()
                        .scheduler()
                        .pick_next(self.tasks, &ready)
                    {
                        Some(pick) if pick == id => {}
                        Some(pick) => self.flag(
                            a,
                            Some(id),
                            Rule::TraceConsistency,
                            format!(
                                "priority inversion: T{} ran while T{} had priority",
                                id.0 + 1,
                                pick.0 + 1
                            ),
                        ),
                        None => self.flag(
                            a,
                            Some(id),
                            Rule::TraceConsistency,
                            "task ran with an empty ready queue".to_owned(),
                        ),
                    }
                }
                let work = (b - a).work_at(freq);
                let rt = &mut self.rt[id.0];
                rt.executed += work;
                if rt.executed.as_ms() > rt.actual.as_ms() + EPS {
                    let (executed, actual) = (rt.executed, rt.actual);
                    self.flag(
                        b,
                        Some(id),
                        Rule::TraceConsistency,
                        format!("executed {executed} past the sampled work {actual}"),
                    );
                }
            }
            Activity::Idle => {
                if self.fault_active {
                    return;
                }
                let want = self.policy.as_dyn_ref().idle_point(self.machine);
                if seg.point != want {
                    self.flag(
                        a,
                        None,
                        Rule::PolicyDivergence,
                        format!(
                            "idled at point {} but the policy asks for {want}",
                            seg.point
                        ),
                    );
                }
                if idles_at_lowest(self.kind) && seg.point != self.machine.lowest() {
                    self.flag(
                        a,
                        None,
                        Rule::IdleAtLowest,
                        format!(
                            "dynamic scheme idled at point {} instead of the lowest",
                            seg.point
                        ),
                    );
                }
                if let Some((TaskId(i), _)) = self.ready().first().copied() {
                    self.flag(
                        a,
                        Some(TaskId(i)),
                        Rule::TraceConsistency,
                        "processor idled while ready work was pending".to_owned(),
                    );
                }
            }
            Activity::Stall => {
                // Injected transition jitter stalls the pipeline even when
                // no systematic switch overhead is configured.
                if self.cfg.switch_overhead.is_none() && self.cfg.fault.transition_jitter.is_none()
                {
                    self.flag(
                        a,
                        None,
                        Rule::TraceConsistency,
                        "stall recorded but no switch overhead is configured".to_owned(),
                    );
                }
            }
        }
    }

    fn apply_event(&mut self, event: &TraceEvent) {
        match *event {
            TraceEvent::Release {
                time,
                task,
                invocation,
                deadline,
                next_release,
                actual,
            } => self.on_release(time, task, invocation, deadline, next_release, actual),
            TraceEvent::Completion {
                time,
                task,
                executed,
            } => self.on_completion(time, task, executed),
            TraceEvent::Miss {
                time,
                task,
                deadline,
                remaining,
            } => self.on_miss(time, task, deadline, remaining),
            TraceEvent::Review { time } => self.on_review(time),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_release(
        &mut self,
        time: Time,
        task: TaskId,
        invocation: u64,
        deadline: Time,
        next_release: Time,
        actual: Work,
    ) {
        let i = task.0;
        if i >= self.rt.len() {
            self.flag(
                time,
                Some(task),
                Rule::TraceConsistency,
                "release of an unknown task".to_owned(),
            );
            return;
        }
        let spec = self.tasks.task(task);
        if self.rt[i].state == InvState::Active {
            self.flag(
                time,
                Some(task),
                Rule::TraceConsistency,
                "released while the previous invocation was still active".to_owned(),
            );
        }
        if invocation != self.rt[i].invocation + 1 {
            self.flag(
                time,
                Some(task),
                Rule::TraceConsistency,
                format!(
                    "invocation jumped from {} to {invocation}",
                    self.rt[i].invocation
                ),
            );
        }
        let expect_deadline = self.rt[i].next_release + spec.period();
        if !deadline.approx_eq(expect_deadline) {
            self.flag(
                time,
                Some(task),
                Rule::TraceConsistency,
                format!("deadline {deadline} is not release + period ({expect_deadline})"),
            );
        }
        if !deadline.at_or_before(next_release) {
            self.flag(
                time,
                Some(task),
                Rule::TraceConsistency,
                format!("deadline {deadline} lies beyond the next release {next_release}"),
            );
        }
        if actual.as_ms() > spec.wcet().as_ms() + EPS && self.cfg.fault.overrun.is_none() {
            self.flag(
                time,
                Some(task),
                Rule::TraceConsistency,
                format!("sampled work {actual} exceeds the WCET {}", spec.wcet()),
            );
        }
        let rt = &mut self.rt[i];
        rt.invocation = invocation;
        rt.state = InvState::Active;
        rt.executed = Work::ZERO;
        rt.deadline = deadline;
        rt.next_release = next_release;
        rt.actual = actual;
        // §2.4 step: a release restores the worst-case reservation.
        self.cc_util[i] = spec.utilization();
        let views = self.views();
        let sys = SystemView {
            now: time,
            tasks: self.tasks,
            machine: self.machine,
            views: &views,
        };
        self.policy.as_dyn().on_release(task, &sys);
        self.check_decision(time);
    }

    fn on_completion(&mut self, time: Time, task: TaskId, executed: Work) {
        let i = task.0;
        if i >= self.rt.len() {
            self.flag(
                time,
                Some(task),
                Rule::TraceConsistency,
                "completion of an unknown task".to_owned(),
            );
            return;
        }
        if self.rt[i].state != InvState::Active {
            self.flag(
                time,
                Some(task),
                Rule::TraceConsistency,
                "completion without an active invocation".to_owned(),
            );
        }
        if (self.rt[i].executed.as_ms() - executed.as_ms()).abs() > EPS {
            let accrued = self.rt[i].executed;
            self.flag(
                time,
                Some(task),
                Rule::TraceConsistency,
                format!("journal says {executed} executed, segments accrue {accrued}"),
            );
        }
        if !time.at_or_before(self.rt[i].deadline) {
            let deadline = self.rt[i].deadline;
            self.flag(
                time,
                Some(task),
                Rule::TraceConsistency,
                format!("completed after its deadline {deadline} without a recorded miss"),
            );
        }
        self.rt[i].executed = executed;
        self.rt[i].state = InvState::Completed;
        // §2.4 step: a completion frees the unused reservation.
        self.cc_util[i] = executed.as_ms() / self.tasks.task(task).period().as_ms();
        let views = self.views();
        let sys = SystemView {
            now: time,
            tasks: self.tasks,
            machine: self.machine,
            views: &views,
        };
        self.policy.as_dyn().on_completion(task, &sys);
        self.check_decision(time);
    }

    fn on_miss(&mut self, time: Time, task: TaskId, deadline: Time, remaining: Work) {
        let i = task.0;
        if i >= self.rt.len() {
            self.flag(
                time,
                Some(task),
                Rule::TraceConsistency,
                "miss of an unknown task".to_owned(),
            );
            return;
        }
        let fault_induced = self
            .first_fault
            .map(|t| t.at_or_before(deadline))
            .unwrap_or(false);
        if fault_induced {
            // An injected fault preceded the deadline: the admission
            // test's premises were void, so the policy is not implicated.
            self.flag(
                time,
                Some(task),
                Rule::FaultInducedMiss,
                format!(
                    "invocation {} missed {deadline} with {remaining} left \
                     (first injected fault at {})",
                    self.rt[i].invocation,
                    self.first_fault.unwrap_or(Time::ZERO),
                ),
            );
        } else {
            self.flag(
                time,
                Some(task),
                Rule::DeadlineMiss,
                format!(
                    "invocation {} missed {deadline} with {remaining} left",
                    self.rt[i].invocation
                ),
            );
            if self.guarantees {
                self.flag(
                    time,
                    Some(task),
                    Rule::GuaranteeViolated,
                    format!(
                        "{} admitted the set (condition C1) yet T{} missed {deadline}",
                        self.kind.name(),
                        i + 1
                    ),
                );
            }
        }
        if !deadline.approx_eq(self.rt[i].deadline) {
            let tracked = self.rt[i].deadline;
            self.flag(
                time,
                Some(task),
                Rule::TraceConsistency,
                format!("missed deadline {deadline} but the invocation's is {tracked}"),
            );
        }
        if !deadline.at_or_before(time) {
            self.flag(
                time,
                Some(task),
                Rule::TraceConsistency,
                format!("miss processed before the deadline {deadline}"),
            );
        }
        let expect_remaining = self.remaining(i);
        if (expect_remaining.as_ms() - remaining.as_ms()).abs() > EPS {
            self.flag(
                time,
                Some(task),
                Rule::TraceConsistency,
                format!("journal says {remaining} remained, segments accrue {expect_remaining}"),
            );
        }
        // Mirror the engine's miss handling; the policy is not consulted.
        let period = self.tasks.task(task).period();
        let rt = &mut self.rt[i];
        match self.cfg.miss_policy {
            MissPolicy::DropRemaining => {
                rt.actual = rt.executed;
                rt.state = InvState::Completed;
            }
            MissPolicy::SkipRelease => {
                rt.deadline += period;
                rt.next_release += period;
            }
        }
    }

    fn on_review(&mut self, time: Time) {
        match self.policy.as_dyn_ref().review_at() {
            Some(due) if due.at_or_before(time) => {}
            Some(due) => self.flag(
                time,
                None,
                Rule::PolicyDivergence,
                format!("review granted early (policy asked for {due})"),
            ),
            None => self.flag(
                time,
                None,
                Rule::PolicyDivergence,
                "review granted but the replayed policy requested none".to_owned(),
            ),
        }
        let views = self.views();
        let sys = SystemView {
            now: time,
            tasks: self.tasks,
            machine: self.machine,
            views: &views,
        };
        self.policy.as_dyn().on_review(&sys);
        self.check_decision(time);
    }

    /// Invariants on the very first operating point, before any event.
    fn check_init(&mut self, init: PointIdx) {
        match self.kind {
            PolicyKind::PlainEdf | PolicyKind::PlainRm if init != self.machine.highest() => {
                self.flag(
                    Time::ZERO,
                    None,
                    Rule::DemandCoverage,
                    format!("non-DVS baseline started at point {init}, not the maximum"),
                );
            }
            PolicyKind::PlainEdf | PolicyKind::PlainRm => {}
            PolicyKind::StaticEdf => {
                let need = self.tasks.total_utilization().min(1.0);
                let freq = self.machine.point(init).freq;
                if freq + EPS < need {
                    self.flag(
                        Time::ZERO,
                        None,
                        Rule::DemandCoverage,
                        format!("static EDF frequency {freq} below the utilization {need}"),
                    );
                }
            }
            PolicyKind::StaticRm(test) => {
                let freq = self.machine.point(init).freq;
                if rm_feasible_at(self.tasks, 1.0, test) && !rm_feasible_at(self.tasks, freq, test)
                {
                    self.flag(
                        Time::ZERO,
                        None,
                        Rule::DemandCoverage,
                        format!("static RM frequency {freq} fails the schedulability test"),
                    );
                }
            }
            PolicyKind::Manual { point, .. } => {
                let expect = point.min(self.machine.highest());
                if init != expect {
                    self.flag(
                        Time::ZERO,
                        None,
                        Rule::PolicyDivergence,
                        format!("manual pin started at {init}, requested {expect}"),
                    );
                }
            }
            _ => {}
        }
    }

    /// Policy-specific accounting checks after every scheduling decision.
    fn check_decision(&mut self, now: Time) {
        // Every invariant below is premised on condition C2 (no task
        // exceeds its WCET) and timely releases; an active fault plan
        // voids those premises — e.g. an injected overrun pushes ccRM's
        // outstanding allotment past what a conforming run could accrue —
        // so the policy-state cross-checks stand down. Misses are still
        // classified, and clean runs audit in full.
        if self.fault_active {
            return;
        }
        let views = self.views();
        let sys = SystemView {
            now,
            tasks: self.tasks,
            machine: self.machine,
            views: &views,
        };
        // What the run still owes, worst case. ccRM allots against released
        // work only; laEDF conservatively plans unreleased (Inactive) tasks
        // at their full WCET, so its bound must too.
        let c_left_total: f64 = sys.iter().map(|(id, _)| sys.c_left(id).as_ms()).sum();
        let planned_c_left = |id: TaskId| {
            if sys.view(id).state == InvState::Inactive {
                self.tasks.task(id).wcet().as_ms()
            } else {
                sys.c_left(id).as_ms()
            }
        };
        match &mut self.policy {
            ReplayPolicy::CcEdf(p) => {
                let sum = p.utilization_sum();
                let point = p.current_point();
                let independent: f64 = self.cc_util.iter().sum();
                let expected = self.machine.point_at_least(sum);
                let freq = self.machine.point(point).freq;
                let mut flags: Vec<(Rule, String)> = Vec::new();
                if (sum - independent).abs() > EPS {
                    flags.push((
                        Rule::CcEdfAccounting,
                        format!("policy utilization sum {sum} != journal-derived {independent}"),
                    ));
                }
                if point != expected {
                    flags.push((
                        Rule::DemandCoverage,
                        format!("point {point} != point_at_least({sum}) = {expected}"),
                    ));
                }
                if freq + EPS < sum.min(1.0) {
                    flags.push((
                        Rule::DemandCoverage,
                        format!("frequency {freq} below committed utilization {sum}"),
                    ));
                }
                for (rule, details) in flags {
                    self.flag(now, None, rule, details);
                }
            }
            ReplayPolicy::CcRm(p) => {
                let Some(boundary) = p.review_at() else {
                    return;
                };
                let window = boundary - now;
                let allot = p.outstanding_allotment();
                let alpha = p.alpha();
                let point = p.current_point();
                let expected = point_for_demand(self.machine, allot, window);
                let test = match self.kind {
                    PolicyKind::CcRm(t) => t,
                    _ => unreachable!("ReplayPolicy::CcRm only built for PolicyKind::CcRm"),
                };
                let static_alpha = static_rm_point(self.tasks, self.machine, test)
                    .map_or(1.0, |idx| self.machine.point(idx).freq);
                let mut flags: Vec<(Rule, String)> = Vec::new();
                if (alpha - static_alpha).abs() > EPS {
                    flags.push((
                        Rule::CcRmPacing,
                        format!(
                            "pacing rate {alpha} diverges from the statically-scaled {static_alpha}"
                        ),
                    ));
                }
                if allot.as_ms() > alpha * window.as_ms() + EPS {
                    flags.push((
                        Rule::CcRmPacing,
                        format!(
                            "allotment {allot} exceeds the scaled schedule's {alpha}·{window}",
                        ),
                    ));
                }
                if allot.as_ms() > c_left_total + EPS {
                    flags.push((
                        Rule::CcRmPacing,
                        format!("allotment {allot} exceeds outstanding worst case {c_left_total}"),
                    ));
                }
                if point != expected {
                    flags.push((
                        Rule::DemandCoverage,
                        format!(
                            "point {point} != point_for_demand({allot}, {window}) = {expected}"
                        ),
                    ));
                }
                for (rule, details) in flags {
                    self.flag(now, None, rule, details);
                }
            }
            ReplayPolicy::LaEdf(p) => {
                let Some(d1) = p.review_at() else {
                    return;
                };
                let s = p.work_due_before_next_deadline(&sys);
                let point = p.current_point();
                let expected = point_for_demand(self.machine, s, d1 - now);
                let planned_total: f64 = sys.iter().map(|(id, _)| planned_c_left(id)).sum();
                let due_by_d1: f64 = sys
                    .iter()
                    .filter(|(_, v)| v.deadline.at_or_before(d1))
                    .map(|(id, _)| planned_c_left(id))
                    .sum();
                let mut flags: Vec<(Rule, String)> = Vec::new();
                if s.as_ms() > planned_total + EPS {
                    flags.push((
                        Rule::LaEdfDeferral,
                        format!("plans {s} before D1 but only {planned_total} is planned"),
                    ));
                }
                if s.as_ms() + EPS < due_by_d1 {
                    flags.push((
                        Rule::LaEdfDeferral,
                        format!("defers work due before D1: plans {s}, {due_by_d1} is due"),
                    ));
                }
                if point != expected {
                    flags.push((
                        Rule::DemandCoverage,
                        format!("point {point} != point_for_demand({s}, D1−now) = {expected}"),
                    ));
                }
                for (rule, details) in flags {
                    self.flag(now, None, rule, details);
                }
            }
            ReplayPolicy::Other(_) => {}
        }
    }
}
