//! Seeded open-loop request generator for serving workloads.
//!
//! A closed-loop load generator waits for responses and therefore
//! self-throttles when the server falls behind — it cannot express a
//! *flood*. Serving experiments need an open-loop arrival process: requests
//! arrive on their own schedule whether or not the server keeps up, which
//! is exactly what makes overload, shedding, and backpressure observable.
//!
//! The generator produces a deterministic stream of [`Request`]s from a
//! [`SplitMix64`] pair (one stream for interarrivals, one for work sizes,
//! both split from a `(seed, stream)` pair so per-tenant streams are
//! independent and a tenant's arrivals do not change when another tenant's
//! parameters do):
//!
//! * **Heavy-tailed interarrivals** — a bounded Pareto with tail index
//!   α = 2, inverted through `sqrt` (an IEEE-754 core operation, bit-exact
//!   on every platform — unlike `powf`/`ln`, which go through libm and
//!   would make checked-in goldens platform-dependent). The tail is capped
//!   at a configurable multiple of the mean so one draw cannot stall the
//!   stream forever.
//! * **A diurnal load curve** — arrival rate modulated by a triangle wave
//!   (again: no `sin`, which is libm) of configurable period and depth, so
//!   a long soak sweeps through off-peak and peak load.
//! * **Jittered work sizes** — uniform in `mean × [1 − jitter, 1 + jitter]`.
//!
//! Time is plain `f64` milliseconds: the generator feeds harnesses that
//! batch arrivals into simulator ticks (the timing-wheel path), and those
//! own the conversion into kernel [`rtdvs_core::time::Time`].

use core::fmt;

use crate::rng::SplitMix64;

/// One generated request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Arrival time, in milliseconds since the stream's start.
    pub at_ms: f64,
    /// Work the request demands, in milliseconds of CPU at full speed.
    pub work_ms: f64,
}

/// Parameters of one open-loop request stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenLoopSpec {
    /// Nominal mean interarrival gap, in ms (the uncapped α = 2 Pareto
    /// mean; the tail cap pulls the realized mean slightly below this).
    pub mean_interarrival_ms: f64,
    /// Tail cap as a multiple of the mean gap: no single gap exceeds
    /// `cap × mean`. Must be ≥ 1.
    pub interarrival_cap: f64,
    /// Mean per-request work, in ms.
    pub mean_work_ms: f64,
    /// Work spread: each request draws uniformly from
    /// `mean × [1 − jitter, 1 + jitter]`. In `[0, 1)`.
    pub work_jitter: f64,
    /// Period of the diurnal load triangle wave, in ms. Ignored when
    /// `diurnal_depth` is zero.
    pub diurnal_period_ms: f64,
    /// Depth of the diurnal modulation: the arrival rate swings between
    /// `(1 − depth)` and `(1 + depth)` times nominal. In `[0, 1)`.
    pub diurnal_depth: f64,
}

/// Why an [`OpenLoopSpec`] was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenLoopError {
    /// `mean_interarrival_ms` was not strictly positive.
    NonPositiveInterarrival,
    /// `interarrival_cap` was below 1.
    CapBelowOne,
    /// `mean_work_ms` was not strictly positive.
    NonPositiveWork,
    /// `work_jitter` was outside `[0, 1)`.
    JitterOutOfRange,
    /// `diurnal_depth` was outside `[0, 1)`.
    DepthOutOfRange,
    /// `diurnal_period_ms` was not strictly positive while the depth was
    /// non-zero.
    NonPositiveDiurnalPeriod,
}

impl fmt::Display for OpenLoopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpenLoopError::NonPositiveInterarrival => {
                write!(f, "mean interarrival must be positive")
            }
            OpenLoopError::CapBelowOne => write!(f, "interarrival cap must be at least 1"),
            OpenLoopError::NonPositiveWork => write!(f, "mean work must be positive"),
            OpenLoopError::JitterOutOfRange => write!(f, "work jitter must be in [0, 1)"),
            OpenLoopError::DepthOutOfRange => write!(f, "diurnal depth must be in [0, 1)"),
            OpenLoopError::NonPositiveDiurnalPeriod => {
                write!(f, "diurnal period must be positive when depth is non-zero")
            }
        }
    }
}

impl std::error::Error for OpenLoopError {}

/// A deterministic open-loop request stream.
#[derive(Debug, Clone)]
pub struct OpenLoopGen {
    spec: OpenLoopSpec,
    gaps: SplitMix64,
    works: SplitMix64,
    clock_ms: f64,
}

impl OpenLoopGen {
    /// Creates a stream from `(seed, stream)`. Distinct stream ids on the
    /// same seed yield statistically independent streams (the split is the
    /// same Weyl-step construction the fault injector uses), so a
    /// per-tenant stream survives other tenants being added or removed.
    ///
    /// # Errors
    ///
    /// An [`OpenLoopError`] naming the invalid field.
    pub fn new(spec: OpenLoopSpec, seed: u64, stream: u64) -> Result<OpenLoopGen, OpenLoopError> {
        if spec.mean_interarrival_ms.is_nan() || spec.mean_interarrival_ms <= 0.0 {
            return Err(OpenLoopError::NonPositiveInterarrival);
        }
        if spec.interarrival_cap.is_nan() || spec.interarrival_cap < 1.0 {
            return Err(OpenLoopError::CapBelowOne);
        }
        if spec.mean_work_ms.is_nan() || spec.mean_work_ms <= 0.0 {
            return Err(OpenLoopError::NonPositiveWork);
        }
        if !(0.0..1.0).contains(&spec.work_jitter) {
            return Err(OpenLoopError::JitterOutOfRange);
        }
        if !(0.0..1.0).contains(&spec.diurnal_depth) {
            return Err(OpenLoopError::DepthOutOfRange);
        }
        if spec.diurnal_depth > 0.0
            && (spec.diurnal_period_ms.is_nan() || spec.diurnal_period_ms <= 0.0)
        {
            return Err(OpenLoopError::NonPositiveDiurnalPeriod);
        }
        let root = SplitMix64::seed_from_u64(seed).split(stream);
        Ok(OpenLoopGen {
            spec,
            gaps: root.split(0x0A_0001),
            works: root.split(0x0A_0002),
            clock_ms: 0.0,
        })
    }

    /// The diurnal rate multiplier at `t`: a triangle wave through
    /// `[1 − depth, 1 + depth]`, starting at the trough.
    fn rate_at(&self, t_ms: f64) -> f64 {
        if self.spec.diurnal_depth.abs() < rtdvs_core::time::EPS {
            return 1.0;
        }
        let phase = t_ms / self.spec.diurnal_period_ms;
        let frac = phase - phase.floor();
        let tri = if frac < 0.5 {
            4.0 * frac - 1.0
        } else {
            3.0 - 4.0 * frac
        };
        1.0 + self.spec.diurnal_depth * tri
    }

    /// Generates the next request. The stream is unbounded; callers stop
    /// at their horizon.
    pub fn next_request(&mut self) -> Request {
        // Bounded Pareto(α = 2) gap: xm / sqrt(1 − U) with xm = mean / 2
        // (so the uncapped mean is the nominal one), capped at cap × mean.
        let u = self.gaps.next_f64();
        let xm = self.spec.mean_interarrival_ms / 2.0;
        let raw = (xm / (1.0 - u).sqrt())
            .min(self.spec.interarrival_cap * self.spec.mean_interarrival_ms);
        // The diurnal curve scales the *rate*, so it divides the gap.
        let gap = raw / self.rate_at(self.clock_ms);
        self.clock_ms += gap;
        let j = self.spec.work_jitter;
        let work = self.spec.mean_work_ms * self.works.range_f64(1.0 - j, 1.0 + j);
        Request {
            at_ms: self.clock_ms,
            work_ms: work,
        }
    }

    /// Every request arriving strictly before `until_ms`, appended to
    /// `out` (the batched-release path: one call per simulator tick).
    pub fn drain_until(&mut self, until_ms: f64, out: &mut Vec<Request>) {
        loop {
            let mut probe = self.clone();
            let r = probe.next_request();
            if r.at_ms >= until_ms {
                return;
            }
            *self = probe;
            out.push(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> OpenLoopSpec {
        OpenLoopSpec {
            mean_interarrival_ms: 2.0,
            interarrival_cap: 50.0,
            mean_work_ms: 0.1,
            work_jitter: 0.5,
            diurnal_period_ms: 1000.0,
            diurnal_depth: 0.4,
        }
    }

    #[test]
    fn validation_names_the_offending_field() {
        let cases = [
            (
                OpenLoopSpec {
                    mean_interarrival_ms: 0.0,
                    ..spec()
                },
                OpenLoopError::NonPositiveInterarrival,
            ),
            (
                OpenLoopSpec {
                    interarrival_cap: 0.5,
                    ..spec()
                },
                OpenLoopError::CapBelowOne,
            ),
            (
                OpenLoopSpec {
                    mean_work_ms: -1.0,
                    ..spec()
                },
                OpenLoopError::NonPositiveWork,
            ),
            (
                OpenLoopSpec {
                    work_jitter: 1.0,
                    ..spec()
                },
                OpenLoopError::JitterOutOfRange,
            ),
            (
                OpenLoopSpec {
                    diurnal_depth: -0.1,
                    ..spec()
                },
                OpenLoopError::DepthOutOfRange,
            ),
            (
                OpenLoopSpec {
                    diurnal_period_ms: 0.0,
                    ..spec()
                },
                OpenLoopError::NonPositiveDiurnalPeriod,
            ),
        ];
        for (s, want) in cases {
            assert_eq!(OpenLoopGen::new(s, 1, 1).err(), Some(want), "{s:?}");
        }
        assert!(OpenLoopGen::new(spec(), 1, 1).is_ok());
    }

    #[test]
    fn streams_are_deterministic_and_monotone() {
        let mut a = OpenLoopGen::new(spec(), 42, 7).unwrap();
        let mut b = OpenLoopGen::new(spec(), 42, 7).unwrap();
        let mut last = 0.0;
        for _ in 0..10_000 {
            let ra = a.next_request();
            let rb = b.next_request();
            assert_eq!(ra.at_ms.to_bits(), rb.at_ms.to_bits());
            assert_eq!(ra.work_ms.to_bits(), rb.work_ms.to_bits());
            assert!(ra.at_ms > last, "arrivals must advance");
            last = ra.at_ms;
        }
    }

    #[test]
    fn distinct_streams_differ_and_survive_neighbors() {
        let mut s1 = OpenLoopGen::new(spec(), 42, 1).unwrap();
        let mut s2 = OpenLoopGen::new(spec(), 42, 2).unwrap();
        let r1 = s1.next_request();
        let r2 = s2.next_request();
        assert_ne!(r1, r2, "streams must be independent");
        // The same (seed, stream) gives the same arrivals regardless of
        // what other streams exist — the isolation property the bench's
        // flood-vs-baseline comparison depends on.
        let mut again = OpenLoopGen::new(spec(), 42, 1).unwrap();
        assert_eq!(again.next_request(), r1);
    }

    #[test]
    fn mean_gap_and_work_land_near_nominal() {
        let s = OpenLoopSpec {
            diurnal_depth: 0.0,
            ..spec()
        };
        let mut g = OpenLoopGen::new(s, 7, 0).unwrap();
        let n = 200_000;
        let mut last = 0.0;
        let mut sum_gap = 0.0;
        let mut sum_work = 0.0;
        let mut max_gap = 0.0f64;
        for _ in 0..n {
            let r = g.next_request();
            sum_gap += r.at_ms - last;
            max_gap = max_gap.max(r.at_ms - last);
            sum_work += r.work_ms;
            last = r.at_ms;
            assert!(r.work_ms >= 0.05 - 1e-12 && r.work_ms <= 0.15 + 1e-12);
        }
        let mean_gap = sum_gap / f64::from(n);
        // The cap trims the α = 2 tail, so the realized mean sits below
        // nominal but well within the same regime.
        assert!(
            mean_gap > 1.2 && mean_gap < 2.0,
            "mean gap {mean_gap} far from nominal 2.0"
        );
        assert!(max_gap <= 100.0 + 1e-9, "cap of 50×mean violated");
        let mean_work = sum_work / f64::from(n);
        assert!((mean_work - 0.1).abs() < 0.005, "mean work {mean_work}");
    }

    #[test]
    fn diurnal_curve_modulates_the_rate() {
        // Count arrivals in the first (trough-centered) and second
        // (peak-centered) halves of one diurnal period.
        let mut g = OpenLoopGen::new(spec(), 11, 3).unwrap();
        let (mut trough, mut peak) = (0u32, 0u32);
        loop {
            let r = g.next_request();
            if r.at_ms >= 1000.0 {
                break;
            }
            let frac = r.at_ms / 1000.0;
            if !(0.25..0.75).contains(&frac) {
                trough += 1;
            } else {
                peak += 1;
            }
        }
        assert!(
            peak > trough,
            "peak half ({peak}) should out-arrive trough half ({trough})"
        );
    }

    #[test]
    fn drain_until_batches_without_losing_or_reordering() {
        let mut whole = OpenLoopGen::new(spec(), 99, 5).unwrap();
        let mut batched = OpenLoopGen::new(spec(), 99, 5).unwrap();
        let mut direct = Vec::new();
        loop {
            let r = whole.next_request();
            if r.at_ms >= 500.0 {
                break;
            }
            direct.push(r);
        }
        let mut via_batches = Vec::new();
        let mut t = 0.0f64;
        while t < 500.0 {
            batched.drain_until((t + 10.0).min(500.0), &mut via_batches);
            t += 10.0;
        }
        assert_eq!(direct, via_batches);
    }
}
