//! A tiny seeded PRNG so the whole workspace builds with std only.
//!
//! The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a
//! 64-bit counter passed through a mixing function. It is not
//! cryptographic, but it is fast, stateless beyond one word, passes
//! BigCrush when used as intended, and — crucially for this repo — makes
//! every simulation and task-set draw reproducible from a single `u64`
//! seed with no external crates.

/// Deterministic 64-bit PRNG (SplitMix64).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Equal seeds yield equal
    /// streams.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The generator's full internal state (a single word). Feeding it back
    /// through [`SplitMix64::seed_from_u64`] reconstructs the generator
    /// exactly, which is what checkpoint/restore paths need: the stream
    /// continues from the next draw as if nothing happened.
    #[must_use]
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Derives an independent child generator for `stream_id`.
    ///
    /// The child seed is the parent state (not advanced) combined with the
    /// stream id pushed through two rounds of the SplitMix64 finalizer, so
    /// children of adjacent ids start at unrelated points of the sequence
    /// space rather than one step apart. Splitting is pure: the parent is
    /// unchanged, and `(seed, stream_id)` always yields the same child —
    /// exactly what sharded experiment runners need to hand each shard its
    /// own reproducible stream from one experiment seed.
    #[must_use]
    pub fn split(&self, stream_id: u64) -> SplitMix64 {
        // Weyl-step the id so ids 0, 1, 2, … land far apart, then mix the
        // parent state in; one more finalizer round decorrelates the
        // child's first output from the parent's.
        let salted = self
            .state
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream_id.wrapping_add(1)));
        SplitMix64 {
            state: mix64(mix64(salted)),
        }
    }

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; 2^-53 scales them into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform index in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot draw an index from an empty range");
        // Multiply-shift reduction (Lemire); the bias for the n used here
        // (band counts, task counts) is far below 2^-50.
        let n64 = n as u64;
        let hi = ((u128::from(self.next_u64()) * u128::from(n64)) >> 64) as u64;
        hi as usize
    }

    /// A uniform draw from the half-open interval `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "bad range");
        lo + (hi - lo) * self.next_f64()
    }

    /// A uniform draw from the closed interval `[lo, hi]`.
    ///
    /// The upper bound is attainable (with probability ~2^-53 per draw),
    /// matching the semantics the former `rand` inclusive ranges had.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn range_f64_inclusive(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "bad range");
        // Scale by 2^-53 over 2^53 + 1 equally-likely lattice points would
        // need rejection; for simulation purposes, stretching the half-open
        // draw by one ulp-step is indistinguishable and keeps the code one
        // line.
        let f = (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + (hi - lo) * f
    }
}

/// The SplitMix64 output finalizer as a pure function of a word.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::seed_from_u64(43);
        assert_ne!(SplitMix64::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn state_round_trips_exactly() {
        let mut r = SplitMix64::seed_from_u64(0xABCD);
        for _ in 0..17 {
            let _ = r.next_u64();
        }
        let mut resumed = SplitMix64::seed_from_u64(r.state());
        for _ in 0..64 {
            assert_eq!(r.next_u64(), resumed.next_u64());
        }
    }

    #[test]
    fn known_answer_vector() {
        // Reference outputs for seed 0 from the published SplitMix64
        // algorithm.
        let mut r = SplitMix64::seed_from_u64(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn split_streams_are_reproducible_and_leave_parent_untouched() {
        let parent = SplitMix64::seed_from_u64(0x5eed);
        let mut a = parent.split(3);
        let mut b = parent.split(3);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Splitting never advances the parent.
        let mut p1 = parent;
        let mut p2 = SplitMix64::seed_from_u64(0x5eed);
        assert_eq!(p1.next_u64(), p2.next_u64());
    }

    #[test]
    fn split_streams_are_pairwise_disjoint() {
        // Four shards drawing 1000 words each from splits of one seed must
        // never collide — 4000 draws from a 2^64 space collide with
        // probability ~4e-13, so any overlap means the streams are related.
        let parent = SplitMix64::seed_from_u64(42);
        let mut seen = std::collections::HashSet::new();
        for stream in 0..4u64 {
            let mut child = parent.split(stream);
            for _ in 0..1000 {
                assert!(
                    seen.insert(child.next_u64()),
                    "stream {stream} repeated an output of an earlier stream"
                );
            }
        }
    }

    #[test]
    fn split_depends_on_both_seed_and_stream() {
        let a = SplitMix64::seed_from_u64(1).split(0);
        let b = SplitMix64::seed_from_u64(1).split(1);
        let c = SplitMix64::seed_from_u64(2).split(0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Adjacent stream ids must not yield shifted copies of one stream:
        // a's second output differing from b's first is the cheap check.
        let (mut a, mut b) = (a, b);
        let a0 = a.next_u64();
        let a1 = a.next_u64();
        let b0 = b.next_u64();
        assert_ne!(a1, b0);
        assert_ne!(a0, b0);
    }

    #[test]
    fn f64_stays_in_unit_interval_and_varies() {
        let mut r = SplitMix64::seed_from_u64(7);
        let mut min = 1.0f64;
        let mut max = 0.0f64;
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            min = min.min(x);
            max = max.max(x);
        }
        assert!(min < 0.05 && max > 0.95, "poor spread: [{min}, {max}]");
    }

    #[test]
    fn mean_is_near_half() {
        let mut r = SplitMix64::seed_from_u64(11);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn index_covers_range_uniformly() {
        let mut r = SplitMix64::seed_from_u64(3);
        let mut counts = [0usize; 3];
        for _ in 0..3_000 {
            counts[r.index(3)] += 1;
        }
        for c in counts {
            assert!((800..=1200).contains(&c), "skewed bucket {c}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn index_rejects_zero() {
        SplitMix64::seed_from_u64(0).index(0);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SplitMix64::seed_from_u64(5);
        for _ in 0..1_000 {
            let x = r.range_f64(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
            let y = r.range_f64_inclusive(-1.0, 1.0);
            assert!((-1.0..=1.0).contains(&y));
        }
        // Degenerate ranges are fine.
        assert_eq!(r.range_f64(4.0, 4.0), 4.0);
        assert_eq!(r.range_f64_inclusive(4.0, 4.0), 4.0);
    }
}
