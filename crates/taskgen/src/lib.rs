//! # rtdvs-taskgen
//!
//! Random periodic task-set generation, replicating the workload model of
//! Pillai & Shin (SOSP 2001, §3.1), originally used for the EMERALDS
//! microkernel evaluation:
//!
//! * each task has an equal probability of a **short** (1–10 ms),
//!   **medium** (10–100 ms), or **long** (100–1000 ms) period, uniform
//!   within the band;
//! * raw computation times are drawn from the same three-band distribution
//!   (capped at the period), then scaled by a constant so the set's total
//!   worst-case utilization hits a target value.
//!
//! Generation is deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::fmt;

use rtdvs_core::task::{Task, TaskSet};
use rtdvs_core::time::{Time, Work};

pub mod openloop;
pub mod rng;

pub use openloop::{OpenLoopError, OpenLoopGen, OpenLoopSpec, Request};
pub use rng::SplitMix64;

/// The paper's three period bands, in milliseconds.
pub const PERIOD_BANDS_MS: [(f64, f64); 3] = [(1.0, 10.0), (10.0, 100.0), (100.0, 1000.0)];

/// Task-set generator configuration.
#[derive(Debug, Clone)]
pub struct TaskGenSpec {
    /// Number of tasks per set.
    pub n_tasks: usize,
    /// Target total worst-case utilization in `(0, 1]`.
    pub utilization: f64,
    bands: Vec<(f64, f64)>,
}

impl TaskGenSpec {
    /// Creates a spec with the paper's three period bands.
    ///
    /// # Errors
    ///
    /// Returns [`TaskGenError`] if `n_tasks` is zero or `utilization` is
    /// outside `(0, 1]`.
    pub fn new(n_tasks: usize, utilization: f64) -> Result<TaskGenSpec, TaskGenError> {
        if n_tasks == 0 {
            return Err(TaskGenError::NoTasks);
        }
        if !(utilization > 0.0 && utilization <= 1.0) {
            return Err(TaskGenError::BadUtilization { utilization });
        }
        Ok(TaskGenSpec {
            n_tasks,
            utilization,
            bands: PERIOD_BANDS_MS.to_vec(),
        })
    }

    /// Replaces the period bands (each `(lo, hi)` in ms, picked with equal
    /// probability, uniform within). Useful to restrict a study to short
    /// or long periods.
    ///
    /// # Errors
    ///
    /// Returns [`TaskGenError::BadBands`] for an empty list or a band with
    /// `lo ≤ 0` or `hi ≤ lo`.
    pub fn with_bands(mut self, bands: &[(f64, f64)]) -> Result<TaskGenSpec, TaskGenError> {
        if bands.is_empty() || bands.iter().any(|&(lo, hi)| lo <= 0.0 || hi <= lo) {
            return Err(TaskGenError::BadBands);
        }
        self.bands = bands.to_vec();
        Ok(self)
    }

    /// The period bands in use.
    #[must_use]
    pub fn bands(&self) -> &[(f64, f64)] {
        &self.bands
    }
}

/// Errors from task-set generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TaskGenError {
    /// Zero tasks requested.
    NoTasks,
    /// Target utilization outside `(0, 1]`.
    BadUtilization {
        /// The offending value.
        utilization: f64,
    },
    /// No valid set found within the resampling budget (can only happen
    /// for extreme parameters, e.g. one task at utilization 1.0 whose
    /// scaled computation time keeps exceeding its period).
    Exhausted,
    /// Custom period bands were empty or malformed.
    BadBands,
}

impl fmt::Display for TaskGenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskGenError::NoTasks => write!(f, "at least one task is required"),
            TaskGenError::BadUtilization { utilization } => {
                write!(f, "target utilization {utilization} outside (0, 1]")
            }
            TaskGenError::Exhausted => {
                write!(
                    f,
                    "could not generate a valid task set within the retry budget"
                )
            }
            TaskGenError::BadBands => write!(f, "period bands must be non-empty with 0 < lo < hi"),
        }
    }
}

impl std::error::Error for TaskGenError {}

/// Draws one value from a banded distribution: pick a band uniformly,
/// then a value uniformly within it.
fn banded(bands: &[(f64, f64)], rng: &mut SplitMix64) -> f64 {
    let (lo, hi) = bands[rng.index(bands.len())];
    rng.range_f64(lo, hi)
}

/// Generates one task set for `spec`, deterministically from `seed`.
///
/// The generated set always has total worst-case utilization within
/// `1e-9` of `spec.utilization` and every task satisfies `C_i ≤ P_i`.
/// Candidate sets where the utilization scaling would push some task's
/// computation time above its period are resampled (up to 10 000 times).
///
/// # Errors
///
/// Returns [`TaskGenError::Exhausted`] if no valid set is found, which does
/// not happen for the paper's parameter ranges (n ≥ 2, U ≤ 1).
pub fn generate(spec: &TaskGenSpec, seed: u64) -> Result<TaskSet, TaskGenError> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    const MAX_ATTEMPTS: usize = 10_000;
    for _ in 0..MAX_ATTEMPTS {
        let periods: Vec<f64> = (0..spec.n_tasks)
            .map(|_| banded(&spec.bands, &mut rng))
            .collect();
        let raw_comp: Vec<f64> = (0..spec.n_tasks)
            .map(|_| banded(&spec.bands, &mut rng))
            .zip(&periods)
            .map(|(c, &p)| c.min(p))
            .collect();
        let raw_util: f64 = raw_comp.iter().zip(&periods).map(|(&c, &p)| c / p).sum();
        if raw_util <= 0.0 {
            continue;
        }
        let scale = spec.utilization / raw_util;
        let tasks: Option<Vec<Task>> = periods
            .iter()
            .zip(&raw_comp)
            .map(|(&p, &c)| {
                let scaled = c * scale;
                if scaled > p || scaled <= 0.0 {
                    None
                } else {
                    Task::new(Time::from_ms(p), Work::from_ms(scaled)).ok()
                }
            })
            .collect();
        if let Some(tasks) = tasks {
            let set = TaskSet::new(tasks).expect("n_tasks > 0");
            debug_assert!((set.total_utilization() - spec.utilization).abs() < 1e-9);
            return Ok(set);
        }
    }
    Err(TaskGenError::Exhausted)
}

/// Generates `count` independent task sets, seeded `seed, seed+1, …` —
/// the paper averages each data point over hundreds of such sets.
///
/// # Errors
///
/// Propagates [`TaskGenError::Exhausted`] from [`generate`].
pub fn generate_many(
    spec: &TaskGenSpec,
    seed: u64,
    count: usize,
) -> Result<Vec<TaskSet>, TaskGenError> {
    (0..count)
        .map(|i| generate(spec, seed.wrapping_add(i as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_validation() {
        assert!(TaskGenSpec::new(0, 0.5).is_err());
        assert!(TaskGenSpec::new(5, 0.0).is_err());
        assert!(TaskGenSpec::new(5, 1.2).is_err());
        assert!(TaskGenSpec::new(5, 1.0).is_ok());
    }

    #[test]
    fn hits_target_utilization_exactly() {
        for &u in &[0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
            let spec = TaskGenSpec::new(8, u).unwrap();
            let set = generate(&spec, 42).unwrap();
            assert_eq!(set.len(), 8);
            assert!(
                (set.total_utilization() - u).abs() < 1e-9,
                "target {u}, got {}",
                set.total_utilization()
            );
        }
    }

    #[test]
    fn all_tasks_fit_their_periods() {
        let spec = TaskGenSpec::new(15, 0.95).unwrap();
        for seed in 0..50 {
            let set = generate(&spec, seed).unwrap();
            for t in set.tasks() {
                assert!(t.wcet().as_ms() <= t.period().as_ms() + 1e-9);
                assert!(t.period().as_ms() >= 1.0 && t.period().as_ms() < 1000.0);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = TaskGenSpec::new(5, 0.6).unwrap();
        let a = generate(&spec, 7).unwrap();
        let b = generate(&spec, 7).unwrap();
        assert_eq!(a, b);
        let c = generate(&spec, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn period_bands_are_all_hit() {
        // Over many tasks, every band should appear.
        let spec = TaskGenSpec::new(10, 0.5).unwrap();
        let mut short = 0;
        let mut medium = 0;
        let mut long = 0;
        for seed in 0..30 {
            let set = generate(&spec, seed).unwrap();
            for t in set.tasks() {
                let p = t.period().as_ms();
                if p < 10.0 {
                    short += 1;
                } else if p < 100.0 {
                    medium += 1;
                } else {
                    long += 1;
                }
            }
        }
        assert!(short > 0 && medium > 0 && long > 0);
        // Equal band probability: each should be near a third of 300.
        for count in [short, medium, long] {
            assert!((50..=150).contains(&count), "band count {count} is skewed");
        }
    }

    #[test]
    fn generate_many_counts_and_distinct() {
        let spec = TaskGenSpec::new(5, 0.5).unwrap();
        let sets = generate_many(&spec, 100, 20).unwrap();
        assert_eq!(sets.len(), 20);
        assert_ne!(sets[0], sets[1]);
    }

    #[test]
    fn single_task_full_utilization() {
        // C = P: valid and generated without exhausting retries.
        let spec = TaskGenSpec::new(1, 1.0).unwrap();
        let set = generate(&spec, 3).unwrap();
        let t = &set.tasks()[0];
        assert!((t.wcet().as_ms() - t.period().as_ms()).abs() < 1e-9);
    }

    #[test]
    fn custom_bands_constrain_periods() {
        let spec = TaskGenSpec::new(10, 0.6)
            .unwrap()
            .with_bands(&[(20.0, 50.0)])
            .unwrap();
        for seed in 0..20 {
            let set = generate(&spec, seed).unwrap();
            for t in set.tasks() {
                let p = t.period().as_ms();
                assert!((20.0..50.0).contains(&p), "period {p} escaped the band");
            }
        }
    }

    #[test]
    fn bad_bands_rejected() {
        let spec = TaskGenSpec::new(5, 0.5).unwrap();
        assert!(matches!(
            spec.clone().with_bands(&[]),
            Err(TaskGenError::BadBands)
        ));
        assert!(matches!(
            spec.clone().with_bands(&[(5.0, 5.0)]),
            Err(TaskGenError::BadBands)
        ));
        assert!(matches!(
            spec.with_bands(&[(0.0, 5.0)]),
            Err(TaskGenError::BadBands)
        ));
    }

    #[test]
    fn edf_schedulable_by_construction() {
        let spec = TaskGenSpec::new(10, 1.0).unwrap();
        for seed in 0..10 {
            let set = generate(&spec, seed).unwrap();
            assert!(rtdvs_core::analysis::edf_feasible_at(&set, 1.0));
        }
    }
}
