//! The paper's motivating scenario (§2.2): an embedded camcorder
//! controller with a sensor task that must react within 5 ms and needs up
//! to 3 ms of full-speed computation.
//!
//! A throughput-feedback DVS algorithm (the kind used in general-purpose
//! systems) sees low average load and drops the frequency — and the sensor
//! task starts missing deadlines. The RT-DVS policies save comparable
//! energy while missing nothing. This example implements the naive
//! throughput governor against the public `DvsPolicy` trait to show
//! exactly that failure.
//!
//! ```text
//! cargo run --example camcorder
//! ```

use rtdvs::core::analysis::RmTest;
use rtdvs::core::policy::scheduler_guarantees;
use rtdvs::sim::simulate_with;
use rtdvs::{
    simulate, DvsPolicy, ExecModel, Machine, PointIdx, PolicyKind, SchedulerKind, SimConfig,
    SystemView, TaskId, TaskSet, Time,
};

/// A deliberately deadline-oblivious DVS governor: every completion it
/// re-estimates "recent load" as an exponentially-weighted utilization of
/// completed invocations and picks the lowest frequency that covers it —
/// exactly the average-throughput feedback the paper says "cannot provide
/// any timeliness guarantees".
struct ThroughputGovernor {
    load_estimate: f64,
    point: PointIdx,
}

impl ThroughputGovernor {
    fn new() -> ThroughputGovernor {
        ThroughputGovernor {
            load_estimate: 0.0,
            point: 0,
        }
    }
}

impl DvsPolicy for ThroughputGovernor {
    fn name(&self) -> &'static str {
        "throughput"
    }

    fn scheduler(&self) -> SchedulerKind {
        SchedulerKind::Edf
    }

    fn init(&mut self, tasks: &TaskSet, machine: &Machine) -> PointIdx {
        // Start optimistic, like an interval-based governor waking up idle.
        self.load_estimate = tasks.total_utilization() / 2.0;
        self.point = machine.point_at_least(self.load_estimate);
        self.point
    }

    fn on_release(&mut self, _task: TaskId, sys: &SystemView<'_>) -> PointIdx {
        // Releases do not change the load estimate — the governor only
        // watches how busy the processor has been.
        self.point = sys.machine.point_at_least(self.load_estimate);
        self.point
    }

    fn on_completion(&mut self, task: TaskId, sys: &SystemView<'_>) -> PointIdx {
        let spec = sys.tasks.task(task);
        let inst = sys.view(task).executed.utilization_over(spec.period());
        // Exponentially-weighted moving average of observed utilization.
        self.load_estimate = 0.7 * self.load_estimate + 0.3 * (inst * sys.tasks.len() as f64);
        self.point = sys.machine.point_at_least(self.load_estimate.min(1.0));
        self.point
    }

    fn idle_point(&self, machine: &Machine) -> PointIdx {
        machine.lowest()
    }

    fn current_point(&self) -> PointIdx {
        self.point
    }

    fn guarantees(&self, _tasks: &TaskSet) -> bool {
        false // and that is the whole point
    }
}

fn main() {
    // The camcorder controller: sensor reaction (5 ms deadline, up to
    // 3 ms), video pipeline housekeeping, autofocus servo, and a UI task.
    let tasks = TaskSet::from_ms_pairs(&[
        (5.0, 3.0),   // sensor monitor (the paper's example numbers)
        (33.3, 4.0),  // per-frame pipeline control at ~30 fps
        (50.0, 3.0),  // autofocus servo
        (100.0, 5.0), // UI/OSD refresh
    ])
    .expect("valid task set");
    let machine = Machine::machine0();
    println!(
        "camcorder controller: {} tasks, worst-case utilization {:.3}",
        tasks.len(),
        tasks.total_utilization()
    );
    assert!(scheduler_guarantees(
        SchedulerKind::Edf,
        &tasks,
        RmTest::default()
    ));

    // Invocations usually take well under the worst case — the regime
    // where a throughput governor is most tempted to slow down.
    let cfg = SimConfig::new(Time::from_secs(5.0))
        .with_exec(ExecModel::UniformFraction { lo: 0.2, hi: 0.9 })
        .with_seed(7);

    let baseline = simulate(&tasks, &machine, PolicyKind::PlainEdf, &cfg);

    let mut naive = ThroughputGovernor::new();
    let naive_report = simulate_with(&tasks, &machine, &mut naive, &cfg);
    println!(
        "\n{:<12} energy {:>9.0} (normalized {:.3})  deadline misses: {}",
        "throughput",
        naive_report.energy(),
        naive_report.normalized_against(&baseline),
        naive_report.misses.len()
    );
    if let Some(miss) = naive_report.misses.first() {
        println!(
            "  first miss: {} at t = {:.2} ms with {:.2} ms of work left",
            miss.task,
            miss.deadline.as_ms(),
            miss.remaining.as_ms()
        );
    }

    for kind in [PolicyKind::CcEdf, PolicyKind::LaEdf] {
        let report = simulate(&tasks, &machine, kind, &cfg);
        println!(
            "{:<12} energy {:>9.0} (normalized {:.3})  deadline misses: {}",
            kind.name(),
            report.energy(),
            report.normalized_against(&baseline),
            report.misses.len()
        );
    }

    println!(
        "\nThe throughput governor saves energy but breaks the 5 ms sensor \
         deadline;\nthe RT-DVS policies save comparable energy with zero misses."
    );
}
