//! The RTOS layer in action (§4.2–4.3): admit tasks through the kernel's
//! procfs-like interface, hot-swap the scheduler/DVS policy module while
//! tasks run, and add a task dynamically with the deferred first release
//! that prevents transient deadline misses.
//!
//! ```text
//! cargo run --example policy_swap
//! ```

use rtdvs::kernel::{FractionBody, KernelEvent, RtKernel, UniformBody};
use rtdvs::{Machine, PolicyKind, Time, Work};

fn main() {
    let mut kernel = RtKernel::new(Machine::machine0(), PolicyKind::PlainEdf).with_trace();

    // A cellular-phone-ish baseband set: protocol tick, audio codec frame,
    // and a display task.
    kernel
        .spawn(
            Time::from_ms(4.615), // GSM TDMA frame
            Work::from_ms(1.2),
            Box::new(FractionBody(0.8)),
        )
        .expect("admitted");
    kernel
        .spawn(
            Time::from_ms(20.0), // voice codec frame
            Work::from_ms(6.0),
            Box::new(UniformBody::new(11)),
        )
        .expect("admitted");
    kernel
        .spawn(
            Time::from_ms(100.0),
            Work::from_ms(10.0),
            Box::new(FractionBody(0.5)),
        )
        .expect("admitted");

    println!("-- running 200 ms under plain EDF (no DVS) --");
    kernel.run_for(Time::from_ms(200.0));
    println!("{}", kernel.status());
    let e_nodvs = kernel.energy();

    println!("-- hot-swapping to look-ahead EDF --");
    kernel.load_policy(PolicyKind::LaEdf);
    kernel.run_for(Time::from_ms(200.0));
    println!("{}", kernel.status());
    let e_laedf = kernel.energy() - e_nodvs;
    println!(
        "energy: {e_nodvs:.0} under EDF vs {e_laedf:.0} under laEDF over equal 200 ms windows\n"
    );

    println!("-- dynamically adding a camera task mid-flight --");
    let cam = kernel
        .spawn(
            Time::from_ms(33.3),
            Work::from_ms(8.0),
            Box::new(FractionBody(0.9)),
        )
        .expect("still schedulable");
    let deferred = kernel.log().iter().any(
        |(_, e)| matches!(e, KernelEvent::Admitted { handle, deferred: true } if *handle == cam),
    );
    println!("camera task {cam} admitted (first release deferred: {deferred})");
    kernel.run_for(Time::from_ms(300.0));

    // An overload attempt is refused by admission control.
    let refused = kernel.spawn(
        Time::from_ms(10.0),
        Work::from_ms(9.0),
        Box::new(FractionBody(1.0)),
    );
    println!(
        "overload admission attempt: {}",
        refused
            .map(|h| h.to_string())
            .unwrap_or_else(|e| e.to_string())
    );

    let misses = kernel.misses().count();
    println!("\ntotal deadline misses across the whole run: {misses}");
    assert_eq!(misses, 0, "deferred release keeps the guarantee intact");
}
