//! Translates RT-DVS energy savings into battery life on the prototype
//! platform (§4.1/§4.3): the HP N3350 laptop with its AMD K6-2+ PowerNow!
//! processor, driven by the whole-system power model of Table 1.
//!
//! The second half demonstrates the paper's overhead-accounting rule: the
//! 0.41 ms voltage-transition stall is safe for real-time guarantees only
//! after being charged to the tasks' worst-case computation times (at most
//! two switches per invocation → inflate each WCET by 2 × 0.41 ms).
//!
//! ```text
//! cargo run --example battery_life
//! ```

use rtdvs::core::analysis::RmTest;
use rtdvs::platform::{PowerNowCpu, SystemPowerModel};
use rtdvs::taskgen::{generate, TaskGenSpec};
use rtdvs::{simulate, ExecModel, PolicyKind, SimConfig, TaskSet, Time, Work};

/// A typical laptop battery of the era, in watt-hours.
const BATTERY_WH: f64 = 40.0;

fn main() {
    let cpu = PowerNowCpu::k6_2_plus_550();
    let machine = cpu.machine().expect("valid prototype machine");
    let model = SystemPowerModel::hp_n3350();

    println!("platform: {machine}");
    println!("Table 1 decomposition:");
    for (screen, disk, cpu_state, watts) in model.table1(&machine) {
        println!("  screen {screen:<4} disk {disk:<9} cpu {cpu_state:<9} {watts:5.1} W");
    }

    // The paper's measurement workload: 5 tasks at 90% of worst case,
    // worst-case utilization 0.7 — the regime where Fig. 16 shows
    // 20–40% savings.
    let spec = TaskGenSpec::new(5, 0.7).expect("valid spec");
    let cfg = SimConfig::new(Time::from_secs(10.0))
        .with_exec(ExecModel::ConstantFraction(0.9))
        .with_seed(2001);

    println!("\nworkload: 5 tasks, U = 0.7, c = 0.9, 10 s simulated, screen off");
    println!(
        "{:<10} {:>9} {:>12} {:>9} {:>7}",
        "policy", "CPU W", "system W", "battery", "misses"
    );
    let mut sets = Vec::new();
    for seed in 0..20 {
        sets.push(generate(&spec, seed).expect("generated"));
    }
    for kind in [
        PolicyKind::PlainEdf,
        PolicyKind::StaticRm(RmTest::default()),
        PolicyKind::CcEdf,
        PolicyKind::LaEdf,
    ] {
        let mut sim_power = 0.0;
        let mut misses = 0usize;
        for tasks in &sets {
            let report = simulate(tasks, &machine, kind, &cfg);
            sim_power += report.mean_power();
            misses += report.misses.len();
        }
        sim_power /= sets.len() as f64;
        let system_w = model.total_watts(&machine, sim_power, false, false);
        let hours = BATTERY_WH / system_w;
        println!(
            "{:<10} {:>8.2}W {:>11.2}W {:>7.2}h {:>7}",
            kind.name(),
            model.cpu_watts(&machine, sim_power),
            system_w,
            hours,
            misses
        );
    }

    // ---- Overhead accounting (§2.5 / §4.1) ----------------------------
    // Enable the real PowerNow! transition stalls. Deadlines stay safe
    // only if each task's WCET is inflated by two worst-case stalls.
    let overhead = cpu.switch_overhead();
    let stall_budget = Work::from_ms(2.0 * overhead.voltage_change.as_ms());
    let tasks = TaskSet::from_ms_pairs(&[(30.0, 8.0), (50.0, 10.0), (80.0, 12.0), (120.0, 15.0)])
        .expect("valid control set");
    let inflated = tasks
        .with_inflated_wcets(stall_budget)
        .expect("periods absorb the stall budget");
    println!(
        "\nwith PowerNow! stalls ({:.0} us freq-only, {:.2} ms voltage):",
        overhead.freq_only.as_ms() * 1e3,
        overhead.voltage_change.as_ms()
    );
    println!(
        "  control set U = {:.3}, inflated to {:.3} after charging 2 stalls/invocation",
        tasks.total_utilization(),
        inflated.total_utilization()
    );
    let overhead_cfg = SimConfig::new(Time::from_secs(10.0))
        .with_exec(ExecModel::ConstantFraction(0.8))
        .with_switch_overhead(overhead)
        .with_seed(7);
    for kind in [PolicyKind::CcEdf, PolicyKind::LaEdf] {
        let naive = simulate(&tasks, &machine, kind, &overhead_cfg);
        let accounted = simulate(&inflated, &machine, kind, &overhead_cfg);
        println!(
            "  {:<6} raw bounds: {:>2} misses | inflated bounds: {:>2} misses \
             (energy {:.0} vs {:.0})",
            kind.name(),
            naive.misses.len(),
            accounted.misses.len(),
            naive.energy(),
            accounted.energy()
        );
    }
    println!(
        "\nlaEDF stretches the battery versus plain EDF while every real-time \
         deadline still holds."
    );
}
