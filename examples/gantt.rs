//! Renders the paper's worked-example execution traces (Figs. 2, 3, 5, 7)
//! as ASCII Gantt charts: time flows right, bar height is the operating
//! frequency, the bottom row names the running task.
//!
//! ```text
//! cargo run --example gantt
//! ```

use rtdvs::core::analysis::RmTest;
use rtdvs::core::example::{table2_task_set, table3_actual_times, EXAMPLE_HORIZON_MS};
use rtdvs::{simulate, ExecModel, Machine, PolicyKind, SimConfig, Time};

fn main() {
    let tasks = table2_task_set();
    let machine = Machine::machine0();
    let horizon = Time::from_ms(EXAMPLE_HORIZON_MS);

    println!("Table 2 task set: T1=(8,3) T2=(10,3) T3=(14,1); actual times from Table 3\n");

    let worst = SimConfig::new(horizon).with_trace();
    let actual = SimConfig::new(horizon)
        .with_exec(ExecModel::Trace(table3_actual_times()))
        .with_trace();

    let runs = [
        (
            "Fig. 2 — statically-scaled EDF (worst case)",
            PolicyKind::StaticEdf,
            &worst,
        ),
        (
            "Fig. 2 — statically-scaled RM (worst case)",
            PolicyKind::StaticRm(RmTest::default()),
            &worst,
        ),
        ("Fig. 3 — cycle-conserving EDF", PolicyKind::CcEdf, &actual),
        (
            "Fig. 5 — cycle-conserving RM",
            PolicyKind::CcRm(RmTest::default()),
            &actual,
        ),
        ("Fig. 7 — look-ahead EDF", PolicyKind::LaEdf, &actual),
    ];

    let base = simulate(&tasks, &machine, PolicyKind::PlainEdf, &actual);
    for (title, kind, cfg) in runs {
        let report = simulate(&tasks, &machine, kind, cfg);
        println!("{title}");
        println!(
            "{}",
            report
                .trace
                .as_ref()
                .expect("trace enabled")
                .render_gantt(&machine, horizon, 64)
        );
        if std::ptr::eq(cfg, &actual) {
            println!(
                "  energy {:.0} (normalized {:.2}), misses {}\n",
                report.energy(),
                report.normalized_against(&base),
                report.misses.len()
            );
        } else {
            println!("  misses {}\n", report.misses.len());
        }
    }
}
