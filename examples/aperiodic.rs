//! Mixing hard periodic tasks with aperiodic work through a polling
//! server (§2.2, footnote 1): a cellular-phone controller whose baseband
//! tasks are hard real-time while user keypresses and network events are
//! served from a budgeted queue — with DVS reclaiming whatever budget the
//! quiet periods leave unused.
//!
//! ```text
//! cargo run --example aperiodic
//! ```

use rtdvs::kernel::{FractionBody, RtKernel};
use rtdvs::taskgen::SplitMix64;
use rtdvs::{Machine, PolicyKind, Time, Work};

fn main() {
    let mut kernel = RtKernel::new(Machine::machine0(), PolicyKind::LaEdf);

    // Hard periodic baseband load (U = 0.45).
    kernel
        .spawn(
            Time::from_ms(4.615),
            Work::from_ms(1.0),
            Box::new(FractionBody(0.7)),
        )
        .expect("admitted");
    kernel
        .spawn(
            Time::from_ms(20.0),
            Work::from_ms(4.6),
            Box::new(FractionBody(0.6)),
        )
        .expect("admitted");

    // Polling server: 25 ms period, 5 ms budget (U_s = 0.2).
    let (handle, server) = kernel
        .spawn_polling_server(Time::from_ms(25.0), Work::from_ms(5.0))
        .expect("server admitted");
    println!(
        "polling server {handle}: period 25 ms, budget 5 ms, policy {}",
        kernel.policy_name()
    );

    // Sporadic events: Poisson-ish arrivals over two simulated seconds.
    let mut rng = SplitMix64::seed_from_u64(99);
    let mut submitted = 0usize;
    let mut t: f64 = 0.0;
    while t < 2000.0 {
        t += rng.range_f64(20.0, 160.0);
        kernel.run_until(Time::from_ms(t.min(2000.0)));
        if t < 2000.0 {
            let work = Work::from_ms(rng.range_f64(0.5, 4.5));
            server.submit(work, kernel.now());
            submitted += 1;
        }
    }
    kernel.run_until(Time::from_ms(2200.0));

    let done = server.take_completed();
    let worst = done
        .iter()
        .map(|j| j.response_time().as_ms())
        .fold(0.0f64, f64::max);
    let mean =
        done.iter().map(|j| j.response_time().as_ms()).sum::<f64>() / done.len().max(1) as f64;
    println!(
        "aperiodic jobs: {submitted} submitted, {} completed, {} pending",
        done.len(),
        server.pending()
    );
    println!("response times: mean {mean:.1} ms, worst {worst:.1} ms");
    println!(
        "server budget forfeited in {} quiet periods (reclaimed by DVS)",
        server.forfeited_releases()
    );
    println!(
        "hard deadline misses: {} | energy: {:.0}",
        kernel.misses().count(),
        kernel.energy()
    );
    assert_eq!(kernel.misses().count(), 0);
}
