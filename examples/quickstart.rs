//! Quickstart: define a task set, run every RT-DVS policy on it, and
//! compare energy against the non-DVS baseline and the theoretical bound.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rtdvs::sim::theoretical_bound;
use rtdvs::{simulate, ExecModel, Machine, PolicyKind, SimConfig, TaskSet, Time};

fn main() {
    // Three periodic tasks: (period ms, worst-case computation ms at full
    // speed). This is the paper's Table 2 example set (U = 0.746).
    let tasks =
        TaskSet::from_ms_pairs(&[(8.0, 3.0), (10.0, 3.0), (14.0, 1.0)]).expect("valid task set");
    let machine = Machine::machine0();
    println!("machine: {machine}");
    println!(
        "task set: {} tasks, worst-case utilization {:.3}\n",
        tasks.len(),
        tasks.total_utilization()
    );

    // Simulate one second; each invocation uses a uniformly-random
    // fraction of its worst case, as real workloads tend to.
    let cfg = SimConfig::new(Time::from_secs(1.0))
        .with_exec(ExecModel::uniform())
        .with_seed(42);

    let baseline = simulate(&tasks, &machine, PolicyKind::PlainEdf, &cfg);
    println!(
        "{:<10} energy {:>10.1}   deadline misses: {}",
        "EDF",
        baseline.energy(),
        baseline.misses.len()
    );
    for kind in [
        PolicyKind::StaticRm(Default::default()),
        PolicyKind::StaticEdf,
        PolicyKind::CcEdf,
        PolicyKind::CcRm(Default::default()),
        PolicyKind::LaEdf,
    ] {
        let report = simulate(&tasks, &machine, kind, &cfg);
        println!(
            "{:<10} energy {:>10.1}   normalized {:>5.3}   misses: {}",
            kind.name(),
            report.energy(),
            report.normalized_against(&baseline),
            report.misses.len()
        );
    }

    let bound = theoretical_bound(
        &machine,
        baseline.total_work(),
        cfg.duration,
        cfg.idle_level,
    );
    println!(
        "{:<10} energy {:>10.1}   normalized {:>5.3}   (no algorithm can beat this)",
        "bound",
        bound,
        bound / baseline.energy()
    );
}
